//! The Gavinsky–Lovett–Saks–Srinivasan read-k inequalities and classical
//! comparators.
//!
//! All functions return probabilities clamped to `[0, 1]` so callers can
//! compare them directly against Monte-Carlo estimates.

/// Theorem 1.1 of the paper (GLSS Theorem 1.2): for a read-k family of
/// indicators with `Pr[Y_i = 1] = p`,
/// `Pr[Y_1 = ⋯ = Y_n = 1] ≤ p^{n/k}`.
///
/// # Panics
///
/// Panics if `p ∉ [0,1]`, `n == 0`, or `k == 0`.
///
/// ```
/// let b = arbmis_readk::conjunction_bound(0.5, 10, 2);
/// assert!((b - 0.5f64.powf(5.0)).abs() < 1e-12);
/// ```
pub fn conjunction_bound(p: f64, n: usize, k: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
    assert!(n > 0, "family must be nonempty");
    assert!(k > 0, "read parameter must be positive");
    p.powf(n as f64 / k as f64).clamp(0.0, 1.0)
}

/// Theorem 1.2 form (1): `Pr[Y ≤ (p̄ − ε)·n] ≤ exp(−2ε²·n/k)` where
/// `p̄` is the average success probability and `Y = Σ Y_i`.
///
/// Returns the bound for given `ε`, `n`, `k` (the `p̄` enters only through
/// the threshold the caller tests, not the bound itself).
///
/// # Panics
///
/// Panics if `ε < 0`, `n == 0`, or `k == 0`.
pub fn tail_form1(eps: f64, n: usize, k: usize) -> f64 {
    assert!(eps >= 0.0, "eps must be nonnegative");
    assert!(n > 0 && k > 0);
    (-2.0 * eps * eps * n as f64 / k as f64)
        .exp()
        .clamp(0.0, 1.0)
}

/// Theorem 1.2 form (2): `Pr[Y ≤ (1 − δ)·E[Y]] ≤ exp(−δ²·E[Y]/(2k))`.
///
/// # Panics
///
/// Panics if `δ < 0`, `expectation < 0`, or `k == 0`.
pub fn tail_form2(delta: f64, expectation: f64, k: usize) -> f64 {
    assert!(delta >= 0.0, "delta must be nonnegative");
    assert!(expectation >= 0.0, "expectation must be nonnegative");
    assert!(k > 0);
    (-delta * delta * expectation / (2.0 * k as f64))
        .exp()
        .clamp(0.0, 1.0)
}

/// Classical multiplicative Chernoff lower tail for *independent*
/// indicators: `Pr[Y ≤ (1 − δ)·E[Y]] ≤ exp(−δ²·E[Y]/2)`. The k = 1 case of
/// [`tail_form2`]; included for side-by-side comparison tables.
pub fn chernoff_lower_tail(delta: f64, expectation: f64) -> f64 {
    tail_form2(delta, expectation, 1)
}

/// Azuma–Hoeffding bound treating `Y` as a `k`-Lipschitz function of the
/// `m` base variables: `Pr[Y ≤ E[Y] − t] ≤ exp(−t²/(2·m·k²))`.
///
/// GLSS point out their tail bound beats this when `n ≈ m`; exposing both
/// lets the experiment table exhibit the gap.
///
/// # Panics
///
/// Panics if `t < 0`, `m == 0`, or `k == 0`.
pub fn azuma_lower_tail(t: f64, m: usize, k: usize) -> f64 {
    assert!(t >= 0.0);
    assert!(m > 0 && k > 0);
    (-t * t / (2.0 * m as f64 * (k * k) as f64))
        .exp()
        .clamp(0.0, 1.0)
}

/// The paper's Theorem 3.1 lower bound: with `|M| = m_size`, max active
/// degree `Δ_M`, and arboricity `α`, some node of `M` beats all its
/// children with probability at least
/// `1 − (1 − 1/Δ_M)^{m_size/(2α²)}`.
pub fn event1_lower_bound(m_size: usize, delta_m: usize, alpha: usize) -> f64 {
    assert!(delta_m >= 1 && alpha >= 1);
    let base: f64 = 1.0 - 1.0 / delta_m as f64;
    let expo = m_size as f64 / (2.0 * (alpha * alpha) as f64);
    (1.0 - base.powf(expo)).clamp(0.0, 1.0)
}

/// The paper's Theorem 3.2 failure bound: the probability that *fewer*
/// than `|M|/2α` nodes of `M` beat all their parents, bounded via the
/// read-ρ_k tail with `ε = 1/2α`:
/// `exp(−2·(1/4α²)·|M|/ρ_k)`.
pub fn event2_failure_bound(m_size: usize, alpha: usize, rho_k: f64) -> f64 {
    assert!(alpha >= 1 && rho_k > 0.0);
    let eps = 1.0 / (2.0 * alpha as f64);
    (-2.0 * eps * eps * m_size as f64 / rho_k)
        .exp()
        .clamp(0.0, 1.0)
}

/// The paper's Theorem 3.3 per-iteration elimination fraction:
/// `1 / (8α²(32α⁶ + 1))` of `M` is eliminated with probability
/// `≥ 1 − 1/Δ³`.
pub fn event3_elimination_fraction(alpha: usize) -> f64 {
    assert!(alpha >= 1);
    let a = alpha as f64;
    1.0 / (8.0 * a * a * (32.0 * a.powi(6) + 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_matches_independent_when_k1() {
        let b = conjunction_bound(0.3, 7, 1);
        assert!((b - 0.3f64.powi(7)).abs() < 1e-12);
    }

    #[test]
    fn conjunction_degrades_with_k() {
        let b1 = conjunction_bound(0.5, 12, 1);
        let b3 = conjunction_bound(0.5, 12, 3);
        let b12 = conjunction_bound(0.5, 12, 12);
        assert!(b1 < b3 && b3 < b12);
        assert!((b12 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn conjunction_rejects_bad_p() {
        let _ = conjunction_bound(1.5, 3, 1);
    }

    #[test]
    #[should_panic]
    fn conjunction_rejects_zero_k() {
        let _ = conjunction_bound(0.5, 3, 0);
    }

    #[test]
    fn form1_monotone_in_eps_and_k() {
        assert!(tail_form1(0.2, 100, 2) < tail_form1(0.1, 100, 2));
        assert!(tail_form1(0.1, 100, 2) < tail_form1(0.1, 100, 8));
        assert_eq!(tail_form1(0.0, 100, 2), 1.0);
    }

    #[test]
    fn form2_vs_chernoff() {
        let e = 50.0;
        let d = 0.5;
        let k = 4;
        let rk = tail_form2(d, e, k);
        let ch = chernoff_lower_tail(d, e);
        assert!(ch < rk, "chernoff {ch} should be tighter than read-k {rk}");
        assert!((rk - ch.powf(1.0 / k as f64)).abs() < 1e-9);
    }

    #[test]
    fn azuma_weaker_than_readk_when_n_eq_m() {
        // Y = sum of n indicators each reading its own variable among m = n
        // base variables, read-k with k = 3: read-k exponent −δ²E/2k beats
        // Azuma's −t²/(2mk²) for t = δE, E = pn.
        let n = 1000usize;
        let p = 0.5;
        let exp_y = p * n as f64;
        let delta = 0.2;
        let t = delta * exp_y;
        let k = 3;
        let readk = tail_form2(delta, exp_y, k);
        let azuma = azuma_lower_tail(t, n, k);
        assert!(readk < azuma, "read-k {readk} vs azuma {azuma}");
    }

    #[test]
    fn event1_bound_behaviour() {
        // Larger M ⇒ better probability; larger α ⇒ worse.
        let small = event1_lower_bound(10, 20, 2);
        let big = event1_lower_bound(1000, 20, 2);
        assert!(big > small);
        let high_arb = event1_lower_bound(1000, 20, 4);
        assert!(high_arb < big);
        assert!((0.0..=1.0).contains(&big));
    }

    #[test]
    fn event2_bound_behaviour() {
        let loose = event2_failure_bound(100, 2, 50.0);
        let tight = event2_failure_bound(10_000, 2, 50.0);
        assert!(tight < loose);
    }

    #[test]
    fn event3_fraction_tiny_but_positive() {
        let f2 = event3_elimination_fraction(2);
        assert!(f2 > 0.0 && f2 < 1e-4);
        assert!(event3_elimination_fraction(3) < f2);
        // α = 1 (trees): 1/(8·33) = 1/264.
        let f1 = event3_elimination_fraction(1);
        assert!((f1 - 1.0 / 264.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_clamped() {
        assert!(tail_form1(10.0, 10, 1) >= 0.0);
        assert!(tail_form2(0.0, 5.0, 2) <= 1.0);
    }
}
