#![warn(missing_docs)]
//! Incremental MIS maintenance under edge/node churn.
//!
//! The static pipeline answers one-shot "compute the MIS of `G`"
//! requests; a live service sees `G` as a *stream* of edge and node
//! inserts and deletes. [`DynamicMis`] maintains a valid MIS across that
//! stream with **locality-bounded repair**: an update batch invalidates
//! only a bounded neighborhood (the shattering structure of
//! Pemmaraju–Riaz makes damage local by design), so instead of a full
//! recompute the layer
//!
//! 1. applies the structural updates to a mutable
//!    [`arbmis_graph::OverlayGraph`] over the CSR base,
//! 2. resolves independence violations by deterministic eviction (a new
//!    MIS–MIS edge keeps its lower-id endpoint),
//! 3. computes the **dirty region** — the set of alive nodes left with
//!    no MIS neighbor, found by a bounded scan of the batch's touched
//!    neighborhoods (evicted nodes, their neighbors, former neighbors of
//!    removed MIS nodes, endpoints of removed MIS edges, new nodes) —
//! 4. extracts it with the shared [`arbmis_graph::SubgraphScratch`] and
//!    re-solves *only that region* on the flat frontier engine
//!    ([`arbmis_flat::solve_mis`]), lifting the joiners back.
//!
//! Every node of the dirty region has, by construction, no neighbor in
//! the surviving MIS, so adding an MIS of the region's induced subgraph
//! restores both independence and maximality globally — that is the
//! repair soundness argument, enforced by the differential oracle in
//! `tests/dynamic_equivalence.rs` on every prefix of random edit
//! scripts.
//!
//! Repairs are **deterministic and replayable**: the repair RNG is
//! counter-pure (`(seed, epoch)` keyed, no state carried between
//! batches), eviction is id-ordered, compaction is a pure function of
//! the update sequence, and each batch emits one `engine="dynamic"`
//! flight-recorder row, so two replicas applying the same script hold
//! byte-identical state and transcripts at every prefix — at any thread
//! count (DESIGN.md §12).

use arbmis_congest::rng;
use arbmis_flat::{solve_mis, FlatAlgo};
use arbmis_graph::{Graph, NodeId, OverlayGraph, SubgraphScratch};
use arbmis_obs::{FlightRecorder, Recorder, RoundRecord};

/// RNG tag for per-epoch repair seeds (`"DYNA"`), disjoint from the
/// protocol tags (`LUBY`/`METI`/`BARI`/`GHAF`).
pub const TAG_REPAIR: u64 = 0x4459_4e41;

/// Flat-engine round budget per repair. Repairs run Luby/Métivier on the
/// dirty region, which finishes in `O(log |region|)` iterations with
/// overwhelming probability; this limit is astronomically above that.
const REPAIR_ROUND_LIMIT: u64 = 1 << 20;

/// Compaction floor: deltas below this never trigger a compaction.
const COMPACT_MIN_ENTRIES: usize = 64;

/// One graph mutation in an update batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert the undirected edge `{u, v}` (no-op if present).
    InsertEdge(NodeId, NodeId),
    /// Remove the undirected edge `{u, v}` (no-op if absent).
    RemoveEdge(NodeId, NodeId),
    /// Append a new node wired to the listed (alive) neighbors; its id
    /// is the graph's node count at application time.
    InsertNode(Vec<NodeId>),
    /// Remove a node and all its incident edges. Its id is never reused.
    RemoveNode(NodeId),
}

/// What one [`DynamicMis::apply`] call did — the deterministic,
/// replayable record of a batch's repair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repair {
    /// Batch index (epoch 0 is the initial full solve).
    pub epoch: u64,
    /// Updates in the batch.
    pub updates: usize,
    /// Nodes removed from the MIS (evictions and removed members),
    /// ascending.
    pub evicted: Vec<NodeId>,
    /// Nodes the repair added to the MIS, ascending.
    pub added: Vec<NodeId>,
    /// Dirty-region size (nodes re-solved).
    pub region_nodes: usize,
    /// Edges of the dirty region's induced subgraph.
    pub region_edges: usize,
    /// Flat-engine rounds the region re-solve took.
    pub repair_rounds: u64,
    /// The counter-pure seed the repair drew its coins from.
    pub repair_seed: u64,
    /// Whether the overlay was compacted after this batch.
    pub compacted: bool,
}

impl Repair {
    /// One-line deterministic rendering, stable across runs and thread
    /// counts — the unit the replay/differential tests compare
    /// byte-for-byte.
    pub fn transcript(&self) -> String {
        format!(
            "epoch={} updates={} evicted={:?} added={:?} region={}n/{}m rounds={} seed={:016x} compacted={}",
            self.epoch,
            self.updates,
            self.evicted,
            self.added,
            self.region_nodes,
            self.region_edges,
            self.repair_rounds,
            self.repair_seed,
            self.compacted
        )
    }
}

/// A maintained MIS over a mutable graph. See the crate docs for the
/// repair algorithm and determinism contract.
pub struct DynamicMis {
    overlay: OverlayGraph,
    in_mis: Vec<bool>,
    seed: u64,
    algo: FlatAlgo,
    epoch: u64,
    scratch: SubgraphScratch,
    /// Reusable dirty-candidate buffer.
    seeds: Vec<NodeId>,
    recorder: Recorder,
    flight: FlightRecorder,
}

impl DynamicMis {
    /// Takes ownership of `g`, computes the initial MIS (epoch 0) with
    /// Métivier on the flat engine, and is ready for updates.
    pub fn new(g: Graph, seed: u64) -> Self {
        Self::with_algo(g, seed, FlatAlgo::Metivier)
    }

    /// Like [`new`](Self::new) with an explicit repair algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `algo` is [`FlatAlgo::BoundedArb`] (not maximal — a
    /// repair must fully dominate its region).
    pub fn with_algo(g: Graph, seed: u64, algo: FlatAlgo) -> Self {
        assert!(
            !matches!(algo, FlatAlgo::BoundedArb { .. }),
            "DynamicMis needs a maximal repair algorithm (Luby/Metivier)"
        );
        let initial_seed = rng::draw(seed, 0, 0, TAG_REPAIR);
        let solved = solve_mis(&g, initial_seed, algo, REPAIR_ROUND_LIMIT)
            .expect("flat engine cannot fail within the repair round limit");
        DynamicMis {
            overlay: OverlayGraph::new(g),
            in_mis: solved.in_mis,
            seed,
            algo,
            epoch: 0,
            scratch: SubgraphScratch::new(),
            seeds: Vec::new(),
            recorder: arbmis_obs::global(),
            flight: arbmis_obs::global_flight(),
        }
    }

    /// Routes observability through `recorder` instead of the global one.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Routes per-batch flight rows through `flight` instead of the
    /// global ring.
    #[must_use]
    pub fn with_flight(mut self, flight: FlightRecorder) -> Self {
        self.flight = flight;
        self
    }

    /// The mutable graph being maintained.
    pub fn graph(&self) -> &OverlayGraph {
        &self.overlay
    }

    /// Current MIS membership mask (length [`OverlayGraph::n`]; dead
    /// nodes are always `false`).
    pub fn mis(&self) -> &[bool] {
        &self.in_mis
    }

    /// Whether `v` is currently in the MIS.
    pub fn is_in_mis(&self, v: NodeId) -> bool {
        self.in_mis[v]
    }

    /// Current MIS size.
    pub fn mis_size(&self) -> usize {
        self.in_mis.iter().filter(|&&b| b).count()
    }

    /// Batches applied so far (0 right after construction).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Full validity audit against the *current* (mutated) graph:
    /// members are alive and pairwise non-adjacent, and every alive
    /// non-member has a member neighbor. `O(n + m)` — the differential
    /// oracle, not a per-batch cost.
    pub fn is_valid_mis(&self) -> bool {
        (0..self.overlay.n()).all(|v| {
            if self.in_mis[v] {
                self.overlay.is_alive(v) && !self.overlay.neighbors(v).any(|u| self.in_mis[u])
            } else {
                !self.overlay.is_alive(v) || self.overlay.neighbors(v).any(|u| self.in_mis[u])
            }
        })
    }

    /// Applies an update batch and repairs the MIS; returns the repair
    /// record. Updates are applied in order; the repair runs once, after
    /// all of them, against the batch's final structure.
    ///
    /// # Panics
    ///
    /// Panics on structurally invalid updates (self loops, out-of-range
    /// ids, updates touching dead nodes) — the graph API's contract.
    pub fn apply(&mut self, batch: &[Update]) -> Repair {
        self.epoch += 1;
        let mut evicted: Vec<NodeId> = Vec::new();
        self.seeds.clear();
        for up in batch {
            self.apply_one(up, &mut evicted);
        }
        self.seeds.sort_unstable();
        self.seeds.dedup();
        // The dirty region: candidates that ended the batch alive,
        // outside the MIS, and with no MIS neighbor. Nodes beyond the
        // candidate set kept their dominator, so this IS the full
        // uncovered set.
        let mut region: Vec<NodeId> = Vec::new();
        for &v in &self.seeds {
            if self.overlay.is_alive(v)
                && !self.in_mis[v]
                && !self.overlay.neighbors(v).any(|u| self.in_mis[u])
            {
                region.push(v);
            }
        }
        let repair_seed = rng::draw(self.seed, 0, self.epoch, TAG_REPAIR);
        let (added, region_edges, repair_rounds) = if region.is_empty() {
            (Vec::new(), 0, 0)
        } else {
            let sub = self
                .scratch
                .induce_by(self.overlay.n(), &region, |v| self.overlay.neighbors(v));
            let solved = solve_mis(sub.graph(), repair_seed, self.algo, REPAIR_ROUND_LIMIT)
                .expect("flat engine cannot fail within the repair round limit");
            let added: Vec<NodeId> = solved
                .in_mis
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| sub.to_parent(i))
                .collect();
            for &v in &added {
                self.in_mis[v] = true;
            }
            (added, sub.graph().m(), solved.rounds)
        };
        evicted.sort_unstable();
        evicted.dedup();
        // Deterministic compaction schedule: fold the overlay back into
        // the CSR once deltas exceed max(64, |E_base|) directed entries.
        let compacted =
            self.overlay.delta_entries() > COMPACT_MIN_ENTRIES.max(self.overlay.base_m());
        if compacted {
            self.overlay.compact();
        }
        let repair = Repair {
            epoch: self.epoch,
            updates: batch.len(),
            evicted,
            added,
            region_nodes: region.len(),
            region_edges,
            repair_rounds,
            repair_seed,
            compacted,
        };
        self.observe(&repair);
        repair
    }

    /// Applies one update, collecting dirty candidates and evictions.
    fn apply_one(&mut self, up: &Update, evicted: &mut Vec<NodeId>) {
        match up {
            Update::InsertEdge(u, v) => {
                if self.overlay.insert_edge(*u, *v) && self.in_mis[*u] && self.in_mis[*v] {
                    // Deterministic tie-break: the lower id stays.
                    let out = (*u).max(*v);
                    self.in_mis[out] = false;
                    evicted.push(out);
                    // Collect the dominated neighborhood NOW, not after
                    // the batch: a later update in the same batch may
                    // disconnect (or delete) these nodes, and they would
                    // be unreachable from `out` by then while still
                    // having lost their dominator.
                    self.seeds.push(out);
                    self.seeds.extend(self.overlay.neighbors(out));
                }
            }
            Update::RemoveEdge(u, v) => {
                if self.overlay.remove_edge(*u, *v) {
                    debug_assert!(
                        !(self.in_mis[*u] && self.in_mis[*v]),
                        "independence invariant broken before removal of ({u},{v})"
                    );
                    if self.in_mis[*u] {
                        self.seeds.push(*v);
                    }
                    if self.in_mis[*v] {
                        self.seeds.push(*u);
                    }
                }
            }
            Update::InsertNode(nbrs) => {
                let v = self.overlay.insert_node(nbrs);
                self.in_mis.push(false);
                self.seeds.push(v);
            }
            Update::RemoveNode(v) => {
                if self.in_mis[*v] {
                    self.in_mis[*v] = false;
                    evicted.push(*v);
                    // Collect the dominated neighborhood at eviction
                    // time, before the structure loses it.
                    self.seeds.extend(self.overlay.neighbors(*v));
                }
                self.overlay.remove_node(*v);
            }
        }
    }

    /// Records churn counters, repair-size histograms, and the
    /// `engine="dynamic"` flight row for one batch. Observation only —
    /// results never depend on whether a recorder is attached
    /// (DESIGN.md §8).
    fn observe(&self, repair: &Repair) {
        if self.recorder.enabled() {
            self.recorder.add("dynamic_batches", 1);
            self.recorder.add("dynamic_updates", repair.updates as u64);
            self.recorder
                .add("dynamic_evictions", repair.evicted.len() as u64);
            self.recorder
                .add("dynamic_joins", repair.added.len() as u64);
            if repair.compacted {
                self.recorder.add("dynamic_compactions", 1);
            }
            self.recorder
                .observe("dynamic_repair_region", repair.region_nodes as u64);
            self.recorder
                .observe("dynamic_repair_rounds", repair.repair_rounds);
        }
        if self.flight.enabled() {
            self.flight.record(RoundRecord {
                engine: "dynamic",
                round: repair.epoch,
                frontier: repair.region_nodes as u64,
                joiners: repair.added.len() as u64,
                joiner_digest: arbmis_flat::divergence::joiner_digest(&repair.added),
                coin_digest: repair.repair_seed,
                messages: repair.updates as u64,
                bits: 0,
                scan: "repair",
                span_seq: self.recorder.seq(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_graph::gen;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn initial_solve_is_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::gnp(120, 0.05, &mut rng);
        let d = DynamicMis::new(g.clone(), 7);
        assert!(d.is_valid_mis());
        assert_eq!(
            d.mis(),
            &solve_mis(
                &g,
                rng::draw(7, 0, 0, TAG_REPAIR),
                FlatAlgo::Metivier,
                1 << 20
            )
            .unwrap()
            .in_mis[..]
        );
    }

    #[test]
    fn edge_insert_between_members_evicts_and_repairs() {
        // Path 0-1-2-3-4: Métivier MIS always contains non-adjacent
        // nodes; force a known shape with a tiny graph instead.
        let g = Graph::empty(2);
        let mut d = DynamicMis::new(g, 3);
        assert!(d.is_in_mis(0) && d.is_in_mis(1), "isolated nodes all join");
        let r = d.apply(&[Update::InsertEdge(0, 1)]);
        assert_eq!(r.evicted, vec![1], "higher id evicted");
        assert!(d.is_valid_mis());
        assert!(d.is_in_mis(0) && !d.is_in_mis(1));
    }

    #[test]
    fn removing_a_member_repairs_coverage() {
        let g = gen::star(5); // center 0
        let mut d = DynamicMis::new(g, 2);
        assert!(d.is_valid_mis());
        let center_in = d.is_in_mis(0);
        let victim = if center_in { 0 } else { 1 };
        let r = d.apply(&[Update::RemoveNode(victim)]);
        assert!(d.is_valid_mis());
        assert!(r.evicted.contains(&victim) || !center_in || victim != 0);
        assert!(!d.is_in_mis(victim));
        assert!(!d.graph().is_alive(victim));
    }

    #[test]
    fn node_insert_joins_or_is_covered() {
        let g = gen::path(6);
        let mut d = DynamicMis::new(g, 9);
        let r = d.apply(&[Update::InsertNode(vec![0, 3])]);
        assert!(d.is_valid_mis());
        assert_eq!(d.graph().n(), 7);
        assert!(r.region_nodes <= 1, "at most the new node is dirty");
    }

    #[test]
    fn batches_are_deterministic_and_replayable() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::gnp(60, 0.08, &mut rng);
        let script: Vec<Vec<Update>> = (0..20)
            .map(|_| {
                (0..8)
                    .map(|_| {
                        let u = rng.gen_range(0..60usize);
                        let v = rng.gen_range(0..60usize);
                        if u == v {
                            Update::InsertNode(vec![u])
                        } else if rng.gen_bool(0.5) {
                            Update::InsertEdge(u, v)
                        } else {
                            Update::RemoveEdge(u, v)
                        }
                    })
                    .collect()
            })
            .collect();
        // Two independent replicas; node inserts above only wire to ids
        // < 60, so every update is valid on both.
        let mut a = DynamicMis::new(g.clone(), 11);
        let mut b = DynamicMis::new(g, 11);
        for batch in &script {
            let ra = a.apply(batch);
            let rb = b.apply(batch);
            assert_eq!(ra.transcript(), rb.transcript());
            assert_eq!(ra, rb);
            assert!(a.is_valid_mis());
        }
        assert_eq!(a.mis(), b.mis());
    }

    #[test]
    fn compaction_preserves_the_mis_and_future_repairs() {
        // Densify a sparse path one edge per batch: the delta layer must
        // eventually cross max(64, base_m) and fold into the CSR, and
        // validity must hold across (and after) every compaction.
        let g = gen::path(14);
        let mut d = DynamicMis::new(g, 4);
        let mut compactions = 0;
        for u in 0..14usize {
            for v in (u + 2)..14 {
                let r = d.apply(&[Update::InsertEdge(u, v)]);
                compactions += u64::from(r.compacted);
                assert!(d.is_valid_mis(), "after inserting ({u},{v})");
                assert_eq!(
                    r.compacted,
                    d.graph().delta_entries() == 0 && r.compacted,
                    "compaction clears the delta layer"
                );
            }
        }
        assert!(compactions > 0, "churn volume must trigger compaction");
        // The now-dense graph still repairs correctly.
        let r = d.apply(&[Update::RemoveNode(0)]);
        assert!(d.is_valid_mis());
        assert!(r.epoch > 0);
    }

    #[test]
    fn repair_is_local_for_local_damage() {
        // A long path: deleting one member's edge should dirty O(1)
        // nodes, never the whole graph.
        let g = gen::path(2000);
        let mut d = DynamicMis::new(g, 6);
        let member = (0..2000).find(|&v| d.is_in_mis(v) && v > 10).unwrap();
        let r = d.apply(&[Update::RemoveNode(member)]);
        assert!(d.is_valid_mis());
        assert!(
            r.region_nodes <= 4,
            "path repair must be O(1), got {}",
            r.region_nodes
        );
    }

    #[test]
    fn flight_row_emitted_per_batch() {
        let flight = FlightRecorder::bounded(16);
        let g = gen::cycle(9);
        let mut d = DynamicMis::new(g, 1).with_flight(flight.clone());
        d.apply(&[Update::RemoveNode(0)]);
        d.apply(&[Update::InsertNode(vec![1, 3])]);
        let rows = flight.to_jsonl();
        assert_eq!(rows.matches("\"engine\":\"dynamic\"").count(), 2, "{rows}");
        assert!(rows.contains("\"scan\":\"repair\""), "{rows}");
    }

    #[test]
    #[should_panic]
    fn bounded_arb_is_rejected() {
        let params = arbmis_core::ArbParams::new(2, 3, arbmis_core::ParamMode::default());
        let _ = DynamicMis::with_algo(
            gen::path(4),
            1,
            FlatAlgo::BoundedArb {
                params,
                rho_cutoff: true,
            },
        );
    }
}
