//! Acyclic low-out-degree edge orientations.
//!
//! The paper's analysis fixes an orientation of an arboricity-α graph in
//! which every node has at most α out-neighbors, calls the out-neighbors of
//! `v` its **parents** and the in-neighbors its **children**, and builds
//! read-k families over these sets. The algorithm never sees the
//! orientation — it exists purely for analysis and for the experiment
//! harness, exactly as in the paper.
//!
//! We compute orientations from a *smallest-last (degeneracy) ordering*:
//! repeatedly delete a minimum-degree node. If the graph is d-degenerate,
//! every node has at most `d` neighbors deleted after it; orienting each
//! edge from the earlier-deleted endpoint to the later-deleted endpoint
//! yields an **acyclic** orientation with out-degree ≤ d. Since a graph of
//! arboricity α has degeneracy ≤ 2α − 1, this gives out-degree ≤ 2α − 1 —
//! the same asymptotics the paper assumes (it assumes exactly α, which
//! exists by Nash–Williams but needs more machinery to compute; the read-k
//! parameters just scale by the constant).

use crate::graph::{Graph, NodeId};

/// A smallest-last ordering together with the degeneracy it certifies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegeneracyOrdering {
    /// Nodes in deletion order (first deleted first).
    pub order: Vec<NodeId>,
    /// `position[v]` = index of `v` in `order`.
    pub position: Vec<usize>,
    /// The degeneracy: max over deletions of the deleted node's remaining
    /// degree.
    pub degeneracy: usize,
}

/// Computes a smallest-last ordering in `O(n + m)` with bucketed degrees.
pub fn degeneracy_ordering(g: &Graph) -> DegeneracyOrdering {
    let n = g.n();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // Bucket queue: buckets[d] holds nodes of current degree d.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut position = vec![0usize; n];
    let mut degeneracy = 0usize;
    let mut cursor = 0usize; // lowest possibly-nonempty bucket

    for _ in 0..n {
        // Find the smallest-degree remaining node. Degrees only drop by one
        // per removed neighbor, so cursor only needs to back up by one.
        while cursor > 0 && !buckets[cursor - 1].is_empty() {
            cursor -= 1;
        }
        let v = loop {
            while cursor < buckets.len() && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let candidate = buckets[cursor].pop().expect("bucket queue exhausted early");
            // Lazy deletion: entries may be stale (degree changed/removed).
            if !removed[candidate] && degree[candidate] == cursor {
                break candidate;
            }
        };
        removed[v] = true;
        degeneracy = degeneracy.max(degree[v]);
        position[v] = order.len();
        order.push(v);
        for &u in g.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
                buckets[degree[u]].push(u);
            }
        }
    }
    DegeneracyOrdering {
        order,
        position,
        degeneracy,
    }
}

/// An acyclic orientation of a [`Graph`], stored as parent (out) and child
/// (in) CSR adjacency.
///
/// Terminology follows the paper: `parents(v)` are `v`'s out-neighbors,
/// `children(v)` its in-neighbors.
///
/// # Example
///
/// ```
/// use arbmis_graph::{gen, orientation::Orientation};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let g = gen::random_ktree(100, 2, &mut rng);
/// let o = Orientation::by_degeneracy(&g);
/// assert!(o.max_out_degree() <= 2); // k-tree has degeneracy k
/// for v in 0..100 {
///     for &p in o.parents(v) {
///         assert!(o.children(p).contains(&v));
///     }
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Orientation {
    out_offsets: Vec<usize>,
    out_adj: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_adj: Vec<NodeId>,
}

impl Orientation {
    /// Orients `g` along a smallest-last ordering: each edge points from
    /// the earlier-deleted endpoint to the later-deleted endpoint, so
    /// out-degree ≤ degeneracy and the orientation is acyclic.
    pub fn by_degeneracy(g: &Graph) -> Self {
        let ordering = degeneracy_ordering(g);
        Self::from_position(g, &ordering.position)
    }

    /// Orients every edge from lower `position` endpoint to higher. Any
    /// injective `position` yields an acyclic orientation; out-degree
    /// depends on the ordering quality.
    ///
    /// # Panics
    ///
    /// Panics if `position.len() != g.n()`.
    pub fn from_position(g: &Graph, position: &[usize]) -> Self {
        assert_eq!(position.len(), g.n());
        let n = g.n();
        let mut out_degree = vec![0usize; n];
        let mut in_degree = vec![0usize; n];
        for (u, v) in g.edges() {
            let (src, dst) = if position[u] < position[v] {
                (u, v)
            } else {
                (v, u)
            };
            out_degree[src] += 1;
            in_degree[dst] += 1;
        }
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut in_offsets = Vec::with_capacity(n + 1);
        out_offsets.push(0);
        in_offsets.push(0);
        for v in 0..n {
            out_offsets.push(out_offsets[v] + out_degree[v]);
            in_offsets.push(in_offsets[v] + in_degree[v]);
        }
        let mut out_adj = vec![0 as NodeId; out_offsets[n]];
        let mut in_adj = vec![0 as NodeId; in_offsets[n]];
        let mut out_cursor = out_offsets[..n].to_vec();
        let mut in_cursor = in_offsets[..n].to_vec();
        for (u, v) in g.edges() {
            let (src, dst) = if position[u] < position[v] {
                (u, v)
            } else {
                (v, u)
            };
            out_adj[out_cursor[src]] = dst;
            out_cursor[src] += 1;
            in_adj[in_cursor[dst]] = src;
            in_cursor[dst] += 1;
        }
        for v in 0..n {
            out_adj[out_offsets[v]..out_offsets[v + 1]].sort_unstable();
            in_adj[in_offsets[v]..in_offsets[v + 1]].sort_unstable();
        }
        Orientation {
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Out-neighbors of `v` — its *parents* in the paper's terminology.
    #[inline]
    pub fn parents(&self, v: NodeId) -> &[NodeId] {
        &self.out_adj[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-neighbors of `v` — its *children*.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.in_adj[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `v` (number of parents).
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v` (number of children).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Maximum out-degree over all nodes — the orientation's certified
    /// arboricity-style bound.
    pub fn max_out_degree(&self) -> usize {
        (0..self.n()).map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// Grandparents of `v`: parents of parents, deduplicated. At most
    /// `max_out_degree²` nodes.
    pub fn grandparents(&self, v: NodeId) -> Vec<NodeId> {
        let mut gp: Vec<NodeId> = self
            .parents(v)
            .iter()
            .flat_map(|&p| self.parents(p).iter().copied())
            .collect();
        gp.sort_unstable();
        gp.dedup();
        gp
    }

    /// Verifies the orientation covers exactly the edges of `g`, once each.
    pub fn covers(&self, g: &Graph) -> bool {
        if self.n() != g.n() {
            return false;
        }
        if self.out_adj.len() != g.m() {
            return false;
        }
        for v in 0..g.n() {
            for &p in self.parents(v) {
                if !g.has_edge(v, p) {
                    return false;
                }
                if self.parents(p).contains(&v) {
                    return false; // edge oriented both ways
                }
            }
        }
        true
    }

    /// Checks acyclicity by Kahn's algorithm (used by tests; orientations
    /// built from positions are acyclic by construction).
    pub fn is_acyclic(&self) -> bool {
        let n = self.n();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.in_degree(v)).collect();
        let mut stack: Vec<NodeId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = stack.pop() {
            seen += 1;
            // Edges go child -> parent, i.e. u's parents receive from u.
            for &p in self.parents(u) {
                indeg[p] -= 1;
                if indeg[p] == 0 {
                    stack.push(p);
                }
            }
        }
        seen == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn degeneracy_of_known_graphs() {
        assert_eq!(degeneracy_ordering(&gen::path(10)).degeneracy, 1);
        assert_eq!(degeneracy_ordering(&gen::cycle(10)).degeneracy, 2);
        assert_eq!(degeneracy_ordering(&gen::complete(6)).degeneracy, 5);
        assert_eq!(degeneracy_ordering(&gen::star(10)).degeneracy, 1);
        assert_eq!(degeneracy_ordering(&gen::grid(5, 5)).degeneracy, 2);
        assert_eq!(degeneracy_ordering(&Graph::empty(4)).degeneracy, 0);
    }

    #[test]
    fn ordering_is_permutation() {
        let g = gen::random_ktree(100, 3, &mut rng(1));
        let ord = degeneracy_ordering(&g);
        let mut sorted = ord.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        for (i, &v) in ord.order.iter().enumerate() {
            assert_eq!(ord.position[v], i);
        }
    }

    #[test]
    fn ktree_degeneracy_exact() {
        for k in 1..=4 {
            let g = gen::random_ktree(150, k, &mut rng(k as u64));
            assert_eq!(degeneracy_ordering(&g).degeneracy, k);
        }
    }

    #[test]
    fn orientation_out_degree_bounded_by_degeneracy() {
        let g = gen::apollonian(200, &mut rng(2));
        let ord = degeneracy_ordering(&g);
        let o = Orientation::by_degeneracy(&g);
        assert!(o.max_out_degree() <= ord.degeneracy);
        assert!(o.covers(&g));
        assert!(o.is_acyclic());
    }

    #[test]
    fn orientation_in_out_consistent() {
        let g = gen::forest_union(120, 2, &mut rng(3));
        let o = Orientation::by_degeneracy(&g);
        let total_out: usize = (0..g.n()).map(|v| o.out_degree(v)).sum();
        let total_in: usize = (0..g.n()).map(|v| o.in_degree(v)).sum();
        assert_eq!(total_out, g.m());
        assert_eq!(total_in, g.m());
        for v in 0..g.n() {
            for &p in o.parents(v) {
                assert!(o.children(p).contains(&v));
            }
            for &c in o.children(v) {
                assert!(o.parents(c).contains(&v));
            }
        }
    }

    #[test]
    fn tree_orientation_out_degree_one() {
        let g = gen::random_tree_prufer(200, &mut rng(4));
        let o = Orientation::by_degeneracy(&g);
        assert_eq!(o.max_out_degree(), 1);
    }

    #[test]
    fn grandparents_bound() {
        let g = gen::random_ktree(150, 3, &mut rng(5));
        let o = Orientation::by_degeneracy(&g);
        let d = o.max_out_degree();
        for v in 0..g.n() {
            assert!(o.grandparents(v).len() <= d * d);
        }
    }

    #[test]
    fn from_position_orients_by_order() {
        let g = gen::path(4); // 0-1-2-3
        let position = vec![3, 2, 1, 0]; // reverse order
        let o = Orientation::from_position(&g, &position);
        // Edge {0,1}: position[1] < position[0] so 1 -> 0.
        assert_eq!(o.parents(1), &[0]);
        assert_eq!(o.children(0), &[1]);
        assert!(o.is_acyclic());
    }

    #[test]
    fn empty_graph_orientation() {
        let g = Graph::empty(3);
        let o = Orientation::by_degeneracy(&g);
        assert_eq!(o.max_out_degree(), 0);
        assert!(o.covers(&g));
        assert!(o.is_acyclic());
    }
}
