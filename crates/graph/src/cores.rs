//! k-core decomposition.
//!
//! The *coreness* of a node is the largest `k` such that the node survives
//! in the `k`-core (the maximal subgraph of minimum degree ≥ `k`).
//! Coreness refines the degeneracy (`max coreness = degeneracy`) and the
//! suffixes of the smallest-last ordering are exactly the cores — the
//! experiment harness uses core profiles to characterize workloads, and
//! the arboricity lower bound maximizes Nash–Williams density over cores.

use crate::graph::{Graph, NodeId};
use crate::orientation::degeneracy_ordering;

/// The core decomposition of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `coreness[v]` = largest k with `v` in the k-core.
    pub coreness: Vec<usize>,
    /// The degeneracy (= max coreness, 0 for empty graphs).
    pub degeneracy: usize,
}

impl CoreDecomposition {
    /// Nodes of the `k`-core.
    pub fn core(&self, k: usize) -> Vec<NodeId> {
        (0..self.coreness.len())
            .filter(|&v| self.coreness[v] >= k)
            .collect()
    }

    /// Membership mask of the `k`-core.
    pub fn core_mask(&self, k: usize) -> Vec<bool> {
        self.coreness.iter().map(|&c| c >= k).collect()
    }

    /// `sizes[k]` = number of nodes with coreness ≥ k, for k in
    /// `0..=degeneracy`.
    pub fn core_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.degeneracy + 1];
        for &c in &self.coreness {
            for s in sizes.iter_mut().take(c + 1) {
                *s += 1;
            }
        }
        sizes
    }
}

/// Computes coreness for every node in `O(n + m)` via the bucketed
/// peeling order (Batagelj–Zaveršnik / Matula–Beck).
///
/// ```
/// use arbmis_graph::{cores, gen};
/// let g = gen::complete(5);
/// let cd = cores::core_decomposition(&g);
/// assert!(cd.coreness.iter().all(|&c| c == 4));
/// ```
pub fn core_decomposition(g: &Graph) -> CoreDecomposition {
    let ord = degeneracy_ordering(g);
    let n = g.n();
    // Peel in smallest-last order; coreness of v = max over the prefix of
    // the remaining-degree at deletion time (the running maximum is
    // monotone along the order).
    let mut removed = vec![false; n];
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut coreness = vec![0usize; n];
    let mut current = 0usize;
    for &v in &ord.order {
        current = current.max(degree[v]);
        coreness[v] = current;
        removed[v] = true;
        for &u in g.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
            }
        }
    }
    CoreDecomposition {
        coreness,
        degeneracy: ord.degeneracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    #[test]
    fn path_coreness_is_one() {
        let cd = core_decomposition(&gen::path(10));
        assert!(cd.coreness.iter().all(|&c| c == 1));
        assert_eq!(cd.degeneracy, 1);
    }

    #[test]
    fn cycle_coreness_is_two() {
        let cd = core_decomposition(&gen::cycle(8));
        assert!(cd.coreness.iter().all(|&c| c == 2));
    }

    #[test]
    fn pendant_on_clique() {
        // K4 with a pendant node: clique nodes coreness 3, pendant 1.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let cd = core_decomposition(&g);
        assert_eq!(cd.coreness[4], 1);
        assert!((0..4).all(|v| cd.coreness[v] == 3));
        assert_eq!(cd.core(3).len(), 4);
        assert_eq!(cd.core(1).len(), 5);
        assert_eq!(cd.core_mask(3), vec![true, true, true, true, false]);
    }

    #[test]
    fn coreness_max_equals_degeneracy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = gen::gnp(300, 0.05, &mut rng);
        let cd = core_decomposition(&g);
        assert_eq!(
            cd.coreness.iter().copied().max().unwrap_or(0),
            cd.degeneracy
        );
    }

    #[test]
    fn core_property_minimum_degree() {
        // Every node of the k-core has ≥ k neighbors inside the k-core.
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let g = gen::gnp(200, 0.06, &mut rng);
        let cd = core_decomposition(&g);
        for k in 1..=cd.degeneracy {
            let mask = cd.core_mask(k);
            for v in 0..g.n() {
                if mask[v] {
                    let inside = g.neighbors(v).iter().filter(|&&u| mask[u]).count();
                    assert!(inside >= k, "node {v} has only {inside} in {k}-core");
                }
            }
        }
    }

    #[test]
    fn core_sizes_monotone() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = gen::random_ktree(150, 3, &mut rng);
        let cd = core_decomposition(&g);
        let sizes = cd.core_sizes();
        assert_eq!(sizes[0], 150);
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn empty_graph() {
        let cd = core_decomposition(&Graph::empty(0));
        assert_eq!(cd.degeneracy, 0);
        assert!(cd.core_sizes() == vec![0]);
    }

    use crate::graph::Graph;
}
