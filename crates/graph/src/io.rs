//! Plain-text graph I/O.
//!
//! The format is the common whitespace edge-list dialect (compatible with
//! SNAP exports and DIMACS-like files):
//!
//! ```text
//! # comment lines start with '#' (or '%' or 'c')
//! p 5 4        # optional header: node count, edge count
//! 0 1
//! 1 2
//! 2 3
//! 3 4
//! ```
//!
//! Without a header the node count is `max id + 1`. Duplicate edges and
//! both orientations are merged; self loops are rejected.

use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;
use std::fmt;
use std::io::{BufRead, Write};

/// A parse failure with its line number.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads an edge list from any [`BufRead`].
///
/// # Errors
///
/// [`ReadError::Parse`] on malformed lines, self loops, or ids exceeding
/// a declared header count; [`ReadError::Io`] on read failures.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, ReadError> {
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with(['#', '%']) || trimmed.starts_with("c ") {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let first = parts.next().unwrap();
        if first == "p" {
            let n: usize = parts
                .next()
                .ok_or_else(|| parse_err(lineno, "header missing node count"))?
                .parse()
                .map_err(|_| parse_err(lineno, "bad node count"))?;
            declared_n = Some(n);
            continue;
        }
        let u: usize = first
            .parse()
            .map_err(|_| parse_err(lineno, &format!("bad node id {first:?}")))?;
        let v_str = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "edge line needs two endpoints"))?;
        let v: usize = v_str
            .parse()
            .map_err(|_| parse_err(lineno, &format!("bad node id {v_str:?}")))?;
        if u == v {
            return Err(parse_err(lineno, &format!("self loop on node {u}")));
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = match declared_n {
        Some(n) => {
            if !edges.is_empty() && max_id >= n {
                return Err(parse_err(
                    0,
                    &format!("edge endpoint {max_id} exceeds declared node count {n}"),
                ));
            }
            n
        }
        None => {
            if edges.is_empty() {
                0
            } else {
                max_id + 1
            }
        }
    };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

fn parse_err(line: usize, message: &str) -> ReadError {
    ReadError::Parse {
        line,
        message: message.to_string(),
    }
}

/// Parses an edge list from a string.
///
/// # Errors
///
/// Same as [`read_edge_list`].
pub fn parse_edge_list(text: &str) -> Result<Graph, ReadError> {
    read_edge_list(std::io::Cursor::new(text))
}

/// Reads a graph from a file path.
///
/// # Errors
///
/// Same as [`read_edge_list`].
pub fn read_file<P: AsRef<std::path::Path>>(path: P) -> Result<Graph, ReadError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(f))
}

/// Writes a graph as an edge list with a `p` header.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "p {} {}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Writes a graph to a file path.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_file<P: AsRef<std::path::Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, std::io::BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    #[test]
    fn parse_basic() {
        let g = parse_edge_list("# demo\n0 1\n1 2\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn parse_with_header_and_isolated_nodes() {
        let g = parse_edge_list("p 6 2\n0 1\n4 5\n").unwrap();
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let g = parse_edge_list("% matrix-market style\nc dimacs style\n\n0 2\n").unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = parse_edge_list("0 1\n1 0\n0 1\n").unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn errors_reported_with_lines() {
        let e = parse_edge_list("0 1\nx y\n").unwrap_err();
        assert!(e.to_string().contains("line 2"));
        let e = parse_edge_list("3 3\n").unwrap_err();
        assert!(e.to_string().contains("self loop"));
        let e = parse_edge_list("0\n").unwrap_err();
        assert!(e.to_string().contains("two endpoints"));
        let e = parse_edge_list("p 2 1\n0 5\n").unwrap_err();
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn empty_input() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.n(), 0);
        let g = parse_edge_list("p 4 0\n").unwrap();
        assert_eq!(g.n(), 4);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = gen::forest_union(120, 2, &mut rng);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let g = gen::apollonian(80, &mut rng);
        let path = std::env::temp_dir().join("arbmis_io_test.txt");
        write_file(&g, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(g, back);
        let _ = std::fs::remove_file(path);
    }
}
