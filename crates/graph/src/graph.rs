//! Immutable simple undirected graphs in CSR (compressed sparse row) form.
//!
//! [`Graph`] is the single graph type every algorithm in the workspace
//! consumes. It stores, for each node, a sorted slice of neighbor ids, so
//! adjacency queries are `O(log deg)` and neighbor iteration is a cache
//! friendly slice scan. Graphs are *simple*: no self loops, no parallel
//! edges. Construction goes through [`crate::GraphBuilder`] or the
//! convenience constructors here, all of which normalize (sort + dedup) the
//! adjacency lists.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node in a [`Graph`]. Nodes are always `0..n`.
pub type NodeId = usize;

/// A simple undirected graph in CSR form.
///
/// # Example
///
/// ```
/// use arbmis_graph::Graph;
///
/// // A triangle plus a pendant node: 0-1, 1-2, 2-0, 2-3.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.degree(2), 3);
/// assert!(g.has_edge(0, 2));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `adj` for node `v`'s neighbors.
    offsets: Vec<usize>,
    /// Concatenated, per-node-sorted neighbor lists.
    adj: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// Edges may appear in any order and direction; duplicates and both
    /// orientations of the same edge are merged. Self loops are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n` or an edge is a self loop.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut builder = crate::GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// Builds a graph directly from per-node adjacency lists.
    ///
    /// The lists are normalized (sorted, deduplicated) and symmetrized: if
    /// `u` lists `v`, then `v` will list `u` in the result.
    ///
    /// # Panics
    ///
    /// Panics if a listed neighbor id is out of range or equals its owner
    /// (self loop).
    pub fn from_adjacency(lists: Vec<Vec<NodeId>>) -> Self {
        let n = lists.len();
        let mut builder = crate::GraphBuilder::new(n);
        for (u, nbrs) in lists.into_iter().enumerate() {
            for v in nbrs {
                builder.add_edge(u, v);
            }
        }
        builder.build()
    }

    /// Constructs a graph from already-normalized CSR arrays.
    ///
    /// This is the fast path used by [`crate::GraphBuilder`]. The caller
    /// promises that `offsets` is monotone with `offsets[0] == 0` and
    /// `offsets[n] == adj.len()`, each per-node slice of `adj` is strictly
    /// sorted, contains no self reference, and adjacency is symmetric.
    /// Debug builds verify all of this.
    pub(crate) fn from_csr_unchecked(offsets: Vec<usize>, adj: Vec<NodeId>) -> Self {
        let g = Graph { offsets, adj };
        debug_assert!(crate::props::check_well_formed(&g).is_ok());
        g
    }

    /// The empty graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adj: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n() == 0
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted slice of neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` is present. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree Δ of the graph (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree of the graph (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree `2m / n` (0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n() as f64
        }
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            u: 0,
            i: 0,
        }
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.n()
    }

    /// Histogram of degrees: `hist[d]` = number of nodes with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree() + 1];
        for v in self.nodes() {
            hist[self.degree(v)] += 1;
        }
        hist
    }

    /// Number of nodes with degree strictly greater than `threshold`.
    pub fn count_degree_above(&self, threshold: usize) -> usize {
        self.nodes().filter(|&v| self.degree(v) > threshold).count()
    }

    /// Returns the complement adjacency check helper: total possible edges
    /// `n(n-1)/2`.
    pub fn max_possible_edges(&self) -> usize {
        let n = self.n();
        n * n.saturating_sub(1) / 2
    }

    /// Edge density `m / (n choose 2)`, 0.0 when fewer than two nodes.
    pub fn density(&self) -> f64 {
        let poss = self.max_possible_edges();
        if poss == 0 {
            0.0
        } else {
            self.m() as f64 / poss as f64
        }
    }

    /// Raw CSR parts `(offsets, adj)`, e.g. for serialization or FFI.
    pub fn as_csr(&self) -> (&[usize], &[NodeId]) {
        (&self.offsets, &self.adj)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n())
            .field("m", &self.m())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

/// Iterator over the undirected edges of a [`Graph`], yielding each edge
/// once as `(u, v)` with `u < v`. Created by [`Graph::edges`].
#[derive(Clone, Debug)]
pub struct Edges<'a> {
    graph: &'a Graph,
    u: NodeId,
    i: usize,
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        let g = self.graph;
        while self.u < g.n() {
            let nbrs = g.neighbors(self.u);
            while self.i < nbrs.len() {
                let v = nbrs[self.i];
                self.i += 1;
                if self.u < v {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.i = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn counts() {
        let g = triangle_plus_pendant();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle_plus_pendant();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                assert!(g.has_edge(v, u), "asymmetric edge ({u},{v})");
            }
        }
    }

    #[test]
    fn duplicate_and_reversed_edges_merge() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let _ = Graph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_endpoint_rejected() {
        let _ = Graph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
        let g0 = Graph::empty(0);
        assert!(g0.is_empty());
        assert_eq!(g0.avg_degree(), 0.0);
    }

    #[test]
    fn edge_iterator_yields_each_edge_once() {
        let g = triangle_plus_pendant();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = triangle_plus_pendant();
        let hist = g.degree_histogram();
        assert_eq!(hist.iter().sum::<usize>(), g.n());
        assert_eq!(hist[3], 1); // node 2
        assert_eq!(hist[1], 1); // node 3
    }

    #[test]
    fn from_adjacency_symmetrizes() {
        // Only one direction listed; builder must symmetrize.
        let g = Graph::from_adjacency(vec![vec![1, 2], vec![], vec![]]);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn density_and_possible_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(g.max_possible_edges(), 6);
        assert!((g.density() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn count_degree_above() {
        let g = triangle_plus_pendant();
        assert_eq!(g.count_degree_above(1), 3);
        assert_eq!(g.count_degree_above(2), 1);
        assert_eq!(g.count_degree_above(3), 0);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let g = triangle_plus_pendant();
        assert!(!format!("{g}").is_empty());
        assert!(format!("{g:?}").contains("Graph"));
    }
}
