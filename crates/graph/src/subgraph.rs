//! Induced subgraphs and mutable active-set views.
//!
//! Shattering algorithms repeatedly deactivate nodes (joined the MIS, got a
//! neighbor in the MIS, marked bad) and keep asking for degrees and
//! neighborhoods *restricted to the active set* — the paper's `VIB`,
//! `Γ_IB`, `deg_IB`. [`ActiveView`] provides exactly that vocabulary with
//! `O(1)` deactivation and incrementally-maintained active degrees.
//! [`InducedSubgraph`] compacts a node subset into a standalone [`Graph`]
//! for handing components to finishing algorithms.

use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;

/// A compacted induced subgraph with mappings to/from the parent graph.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    graph: Graph,
    /// `to_parent[i]` = parent id of local node `i`.
    to_parent: Vec<NodeId>,
    /// `from_parent[v]` = local id of parent node `v`, or `usize::MAX`.
    from_parent: Vec<usize>,
}

impl InducedSubgraph {
    /// Builds the subgraph of `g` induced by the nodes with
    /// `included[v] == true`.
    ///
    /// # Panics
    ///
    /// Panics if `included.len() != g.n()`.
    pub fn new(g: &Graph, included: &[bool]) -> Self {
        assert_eq!(included.len(), g.n());
        let to_parent: Vec<NodeId> = (0..g.n()).filter(|&v| included[v]).collect();
        let mut from_parent = vec![usize::MAX; g.n()];
        for (i, &v) in to_parent.iter().enumerate() {
            from_parent[v] = i;
        }
        let mut b = GraphBuilder::new(to_parent.len());
        for (i, &v) in to_parent.iter().enumerate() {
            for &u in g.neighbors(v) {
                if included[u] && u > v {
                    b.add_edge(i, from_parent[u]);
                }
            }
        }
        InducedSubgraph {
            graph: b.build(),
            to_parent,
            from_parent,
        }
    }

    /// Builds the subgraph induced by an explicit node list (duplicates
    /// ignored).
    pub fn from_nodes(g: &Graph, nodes: &[NodeId]) -> Self {
        let mut included = vec![false; g.n()];
        for &v in nodes {
            included[v] = true;
        }
        Self::new(g, &included)
    }

    /// The compacted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Parent id of local node `i`.
    pub fn to_parent(&self, i: usize) -> NodeId {
        self.to_parent[i]
    }

    /// Local id of parent node `v`, if included.
    pub fn to_local(&self, v: NodeId) -> Option<usize> {
        let i = self.from_parent[v];
        (i != usize::MAX).then_some(i)
    }

    /// Number of included nodes.
    pub fn n(&self) -> usize {
        self.to_parent.len()
    }

    /// Lifts a local boolean labelling (e.g. an MIS of the subgraph) back
    /// to parent ids.
    pub fn lift(&self, local: &[bool]) -> Vec<NodeId> {
        assert_eq!(local.len(), self.n());
        local
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(self.to_parent[i]))
            .collect()
    }
}

/// Reusable scratch for repeated induced-subgraph extraction.
///
/// [`InducedSubgraph::from_nodes`] allocates two `O(n)` vectors per call
/// (an inclusion mask and a parent→local table), which dominates when a
/// finishing phase extracts thousands of tiny components from one big
/// graph. `SubgraphScratch` keeps those tables alive across calls and
/// invalidates them in `O(1)` with an epoch stamp, so each
/// [`induce`](Self::induce) costs `O(|C| + m(C))` — proportional to the
/// component, never to `n` (beyond a one-time lazy resize when the parent
/// graph grows).
///
/// # Example
///
/// ```
/// use arbmis_graph::{gen, InducedSubgraph, SubgraphScratch};
///
/// let g = gen::path(6);
/// let mut scratch = SubgraphScratch::new();
/// let sub = scratch.induce(&g, &[3, 4, 5]);
/// assert_eq!(sub.n(), 3);
/// assert_eq!(sub.graph(), InducedSubgraph::from_nodes(&g, &[3, 4, 5]).graph());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SubgraphScratch {
    /// Current extraction generation; `stamp[v] == epoch` ⇔ `v` included.
    epoch: u64,
    /// Per-parent-node inclusion stamp (lazily sized to the parent graph).
    stamp: Vec<u64>,
    /// `local[v]` = local id of `v`, valid only when `stamp[v] == epoch`.
    local: Vec<u32>,
    /// Sorted, deduplicated node list of the current extraction.
    nodes: Vec<NodeId>,
}

impl SubgraphScratch {
    /// Creates an empty scratch; tables are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the next epoch's tables for a parent id space of size `n`.
    fn begin(&mut self, n: usize) {
        assert!(n <= u32::MAX as usize, "graph too large for u32 ids");
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.local.resize(n, 0);
        }
        self.epoch += 1;
        self.nodes.clear();
    }

    /// Builds the compacted graph from the sorted `self.nodes` list. Edge
    /// insertion order matches [`InducedSubgraph::new`] exactly, so the
    /// built graphs are equal.
    fn finish(&mut self, g: &Graph) -> Graph {
        self.finish_by(|v| g.neighbors(v).iter().copied())
    }

    /// Generic [`finish`](Self::finish): the parent adjacency is a
    /// neighbor closure instead of a CSR graph.
    fn finish_by<I>(&mut self, neighbors: impl Fn(NodeId) -> I) -> Graph
    where
        I: IntoIterator<Item = NodeId>,
    {
        for (i, &v) in self.nodes.iter().enumerate() {
            self.stamp[v] = self.epoch;
            self.local[v] = i as u32;
        }
        let mut b = GraphBuilder::new(self.nodes.len());
        for (i, &v) in self.nodes.iter().enumerate() {
            for u in neighbors(v) {
                if u > v && self.stamp[u] == self.epoch {
                    b.add_edge(i, self.local[u] as usize);
                }
            }
        }
        b.build()
    }

    /// Extracts the subgraph of `g` induced by `nodes` (duplicates
    /// ignored, order irrelevant — local ids ascend by parent id, exactly
    /// as in [`InducedSubgraph::from_nodes`]).
    ///
    /// The returned view borrows the scratch; drop it before the next
    /// extraction.
    pub fn induce<'a>(&'a mut self, g: &Graph, nodes: &[NodeId]) -> ScratchSubgraph<'a> {
        self.begin(g.n());
        self.nodes.extend_from_slice(nodes);
        self.nodes.sort_unstable();
        self.nodes.dedup();
        let graph = self.finish(g);
        ScratchSubgraph {
            graph,
            scratch: self,
        }
    }

    /// Extracts the subgraph induced by `nodes` of a parent presented as
    /// a neighbor *closure* rather than a CSR [`Graph`] — the entry point
    /// for mutable overlays ([`crate::OverlayGraph`]), whose adjacency
    /// has no slice form. `n` bounds the parent id space (tables are
    /// lazily sized to it); `neighbors(v)` must yield `v`'s neighbors
    /// without duplicates, in any order. Local ids ascend by parent id,
    /// exactly as in [`induce`](Self::induce).
    pub fn induce_by<'a, I>(
        &'a mut self,
        n: usize,
        nodes: &[NodeId],
        neighbors: impl Fn(NodeId) -> I,
    ) -> ScratchSubgraph<'a>
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.begin(n);
        self.nodes.extend_from_slice(nodes);
        self.nodes.sort_unstable();
        self.nodes.dedup();
        let graph = self.finish_by(neighbors);
        ScratchSubgraph {
            graph,
            scratch: self,
        }
    }

    /// Extracts the subgraph induced by `mask` (`O(n)` scan — intended
    /// for once-per-run extractions, not per-component loops).
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != g.n()`.
    pub fn induce_mask<'a>(&'a mut self, g: &Graph, mask: &[bool]) -> ScratchSubgraph<'a> {
        assert_eq!(mask.len(), g.n());
        self.begin(g.n());
        self.nodes.extend((0..g.n()).filter(|&v| mask[v]));
        let graph = self.finish(g);
        ScratchSubgraph {
            graph,
            scratch: self,
        }
    }
}

/// A borrowed view of one [`SubgraphScratch`] extraction: the compacted
/// graph plus parent↔local id mappings, mirroring [`InducedSubgraph`]'s
/// accessors.
#[derive(Debug)]
pub struct ScratchSubgraph<'a> {
    graph: Graph,
    scratch: &'a SubgraphScratch,
}

impl ScratchSubgraph<'_> {
    /// The compacted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Parent id of local node `i`.
    pub fn to_parent(&self, i: usize) -> NodeId {
        self.scratch.nodes[i]
    }

    /// Local id of parent node `v`, if included.
    pub fn to_local(&self, v: NodeId) -> Option<usize> {
        (self.scratch.stamp[v] == self.scratch.epoch).then(|| self.scratch.local[v] as usize)
    }

    /// Number of included nodes.
    pub fn n(&self) -> usize {
        self.scratch.nodes.len()
    }
}

/// A mutable *active set* view of a graph: the paper's `VIB` with
/// `Γ_IB(v)` and `deg_IB(v)` queries.
///
/// Deactivation is one-way (nodes never reactivate), which lets active
/// degrees be maintained incrementally in `O(deg)` per deactivation.
///
/// # Example
///
/// ```
/// use arbmis_graph::{gen, ActiveView};
///
/// let g = gen::star(5);
/// let mut view = ActiveView::new(&g);
/// assert_eq!(view.active_degree(0), 4);
/// view.deactivate(1);
/// view.deactivate(2);
/// assert_eq!(view.active_degree(0), 2);
/// assert_eq!(view.active_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct ActiveView<'a> {
    graph: &'a Graph,
    active: Vec<bool>,
    active_degree: Vec<usize>,
    active_count: usize,
}

impl<'a> ActiveView<'a> {
    /// Creates a view with every node active.
    pub fn new(graph: &'a Graph) -> Self {
        let n = graph.n();
        ActiveView {
            graph,
            active: vec![true; n],
            active_degree: (0..n).map(|v| graph.degree(v)).collect(),
            active_count: n,
        }
    }

    /// Creates a view with exactly the nodes of `mask` active.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != graph.n()`.
    pub fn from_mask(graph: &'a Graph, mask: &[bool]) -> Self {
        assert_eq!(mask.len(), graph.n());
        let n = graph.n();
        let active_degree = (0..n)
            .map(|v| graph.neighbors(v).iter().filter(|&&u| mask[u]).count())
            .collect();
        ActiveView {
            graph,
            active: mask.to_vec(),
            active_degree,
            active_count: mask.iter().filter(|&&b| b).count(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Whether `v` is still active.
    #[inline]
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active[v]
    }

    /// Number of active nodes.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// `deg_IB(v)`: number of active neighbors of `v`. Maintained
    /// incrementally; meaningful for inactive `v` too (their count is still
    /// updated, matching `Γ_IB` semantics for analysis code).
    #[inline]
    pub fn active_degree(&self, v: NodeId) -> usize {
        self.active_degree[v]
    }

    /// Iterates over the active neighbors of `v` (`Γ_IB(v)`).
    pub fn active_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(move |&u| self.active[u])
    }

    /// Iterates over all active nodes.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.graph.n()).filter(move |&v| self.active[v])
    }

    /// Deactivates `v` (idempotent). `O(deg(v))` to update neighbor
    /// degrees.
    pub fn deactivate(&mut self, v: NodeId) {
        if !self.active[v] {
            return;
        }
        self.active[v] = false;
        self.active_count -= 1;
        for &u in self.graph.neighbors(v) {
            self.active_degree[u] -= 1;
        }
    }

    /// Maximum active degree over *active* nodes (`Δ_IB`), 0 if none.
    pub fn max_active_degree(&self) -> usize {
        self.active_nodes()
            .map(|v| self.active_degree[v])
            .max()
            .unwrap_or(0)
    }

    /// Snapshot of the activity mask.
    pub fn mask(&self) -> &[bool] {
        &self.active
    }

    /// Compacts the current active set into a standalone subgraph.
    pub fn to_induced(&self) -> InducedSubgraph {
        InducedSubgraph::new(self.graph, &self.active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn induced_subgraph_of_path() {
        let g = gen::path(6);
        let sub = InducedSubgraph::new(&g, &[true, true, false, true, true, true]);
        assert_eq!(sub.n(), 5);
        // Local graph: 0-1 (from 0-1), and 3-4-5 -> locals 2-3-4 chain.
        assert_eq!(sub.graph().m(), 3);
        assert_eq!(sub.to_parent(2), 3);
        assert_eq!(sub.to_local(3), Some(2));
        assert_eq!(sub.to_local(2), None);
    }

    #[test]
    fn from_nodes_matches_mask() {
        let g = gen::cycle(6);
        let a = InducedSubgraph::from_nodes(&g, &[0, 1, 2]);
        let b = InducedSubgraph::new(&g, &[true, true, true, false, false, false]);
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn lift_roundtrip() {
        let g = gen::path(5);
        let sub = InducedSubgraph::new(&g, &[false, true, true, true, false]);
        let lifted = sub.lift(&[true, false, true]);
        assert_eq!(lifted, vec![1, 3]);
    }

    #[test]
    fn active_view_degrees_track_deactivation() {
        let g = gen::cycle(5);
        let mut view = ActiveView::new(&g);
        assert_eq!(view.max_active_degree(), 2);
        view.deactivate(0);
        assert_eq!(view.active_degree(1), 1);
        assert_eq!(view.active_degree(4), 1);
        assert_eq!(view.active_degree(2), 2);
        assert_eq!(view.active_count(), 4);
        // Idempotent.
        view.deactivate(0);
        assert_eq!(view.active_count(), 4);
    }

    #[test]
    fn active_neighbors_filtered() {
        let g = gen::star(4);
        let mut view = ActiveView::new(&g);
        view.deactivate(2);
        let nbrs: Vec<_> = view.active_neighbors(0).collect();
        assert_eq!(nbrs, vec![1, 3]);
    }

    #[test]
    fn to_induced_compacts_active_set() {
        let g = gen::path(4);
        let mut view = ActiveView::new(&g);
        view.deactivate(1);
        let sub = view.to_induced();
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.graph().m(), 1); // only 2-3 survives
    }

    #[test]
    fn from_mask_view() {
        let g = gen::cycle(6);
        let view = ActiveView::from_mask(&g, &[true, false, true, true, false, false]);
        assert_eq!(view.active_count(), 3);
        assert_eq!(view.active_degree(2), 1); // only neighbor 3 active
        assert_eq!(view.active_degree(3), 1);
        assert_eq!(view.active_degree(0), 0);
        assert!(!view.is_active(1));
    }

    #[test]
    fn empty_view() {
        let g = crate::Graph::empty(0);
        let view = ActiveView::new(&g);
        assert_eq!(view.active_count(), 0);
        assert_eq!(view.max_active_degree(), 0);
    }

    #[test]
    fn scratch_matches_induced_subgraph_across_epochs() {
        use rand::SeedableRng;
        let mut r = rand::rngs::StdRng::seed_from_u64(7);
        let g = gen::gnp(200, 0.05, &mut r);
        let mut scratch = SubgraphScratch::new();
        // Overlapping node sets across epochs: stale stamps must never
        // leak membership or local ids into a later extraction.
        let sets: Vec<Vec<usize>> = vec![
            (0..50).collect(),
            (25..120).collect(),
            vec![199, 3, 3, 77, 3, 10], // duplicates + scrambled order
            (0..200).collect(),
            vec![],
            vec![42],
        ];
        for nodes in &sets {
            let expect = InducedSubgraph::from_nodes(&g, nodes);
            let got = scratch.induce(&g, nodes);
            assert_eq!(got.graph(), expect.graph());
            assert_eq!(got.n(), expect.n());
            for i in 0..expect.n() {
                assert_eq!(got.to_parent(i), expect.to_parent(i));
            }
            for v in 0..g.n() {
                assert_eq!(got.to_local(v), expect.to_local(v), "node {v}");
            }
        }
    }

    #[test]
    fn scratch_mask_matches_new() {
        let g = gen::cycle(9);
        let mask = [true, true, false, true, true, true, false, false, true];
        let expect = InducedSubgraph::new(&g, &mask);
        let mut scratch = SubgraphScratch::new();
        let got = scratch.induce_mask(&g, &mask);
        assert_eq!(got.graph(), expect.graph());
        for i in 0..expect.n() {
            assert_eq!(got.to_parent(i), expect.to_parent(i));
        }
    }

    #[test]
    fn induce_by_matches_induce() {
        use rand::SeedableRng;
        let mut r = rand::rngs::StdRng::seed_from_u64(11);
        let g = gen::gnp(80, 0.08, &mut r);
        let mut a = SubgraphScratch::new();
        let mut b = SubgraphScratch::new();
        let nodes: Vec<usize> = (10..50).collect();
        let want = a.induce(&g, &nodes);
        let got = b.induce_by(g.n(), &nodes, |v| g.neighbors(v).iter().copied());
        assert_eq!(got.graph(), want.graph());
        for i in 0..want.n() {
            assert_eq!(got.to_parent(i), want.to_parent(i));
        }
        for v in 0..g.n() {
            assert_eq!(got.to_local(v), want.to_local(v));
        }
    }

    #[test]
    fn induce_by_over_an_overlay() {
        let mut o = crate::OverlayGraph::new(gen::path(6));
        o.insert_edge(0, 5);
        o.remove_edge(2, 3);
        let mut s = SubgraphScratch::new();
        let sub = s.induce_by(o.n(), &[0, 1, 2, 3, 5], |v| o.neighbors(v));
        // Live edges inside {0,1,2,3,5}: 0-1, 1-2, 0-5 (2-3 removed, 4 excluded).
        assert_eq!(sub.graph().m(), 3);
        assert_eq!(sub.to_local(5), Some(4));
        assert_eq!(sub.to_local(4), None);
    }

    #[test]
    fn scratch_handles_growing_parent_graphs() {
        let small = gen::path(4);
        let big = gen::path(400);
        let mut scratch = SubgraphScratch::new();
        assert_eq!(scratch.induce(&small, &[1, 2]).graph().m(), 1);
        // Reuse against a larger graph must lazily grow the tables.
        let sub = scratch.induce(&big, &[397, 398, 399]);
        assert_eq!(sub.graph().m(), 2);
        assert_eq!(sub.to_parent(0), 397);
        assert_eq!(sub.to_local(399), Some(2));
        assert_eq!(sub.to_local(0), None);
    }
}
