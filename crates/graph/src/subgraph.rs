//! Induced subgraphs and mutable active-set views.
//!
//! Shattering algorithms repeatedly deactivate nodes (joined the MIS, got a
//! neighbor in the MIS, marked bad) and keep asking for degrees and
//! neighborhoods *restricted to the active set* — the paper's `VIB`,
//! `Γ_IB`, `deg_IB`. [`ActiveView`] provides exactly that vocabulary with
//! `O(1)` deactivation and incrementally-maintained active degrees.
//! [`InducedSubgraph`] compacts a node subset into a standalone [`Graph`]
//! for handing components to finishing algorithms.

use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;

/// A compacted induced subgraph with mappings to/from the parent graph.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    graph: Graph,
    /// `to_parent[i]` = parent id of local node `i`.
    to_parent: Vec<NodeId>,
    /// `from_parent[v]` = local id of parent node `v`, or `usize::MAX`.
    from_parent: Vec<usize>,
}

impl InducedSubgraph {
    /// Builds the subgraph of `g` induced by the nodes with
    /// `included[v] == true`.
    ///
    /// # Panics
    ///
    /// Panics if `included.len() != g.n()`.
    pub fn new(g: &Graph, included: &[bool]) -> Self {
        assert_eq!(included.len(), g.n());
        let to_parent: Vec<NodeId> = (0..g.n()).filter(|&v| included[v]).collect();
        let mut from_parent = vec![usize::MAX; g.n()];
        for (i, &v) in to_parent.iter().enumerate() {
            from_parent[v] = i;
        }
        let mut b = GraphBuilder::new(to_parent.len());
        for (i, &v) in to_parent.iter().enumerate() {
            for &u in g.neighbors(v) {
                if included[u] && u > v {
                    b.add_edge(i, from_parent[u]);
                }
            }
        }
        InducedSubgraph {
            graph: b.build(),
            to_parent,
            from_parent,
        }
    }

    /// Builds the subgraph induced by an explicit node list (duplicates
    /// ignored).
    pub fn from_nodes(g: &Graph, nodes: &[NodeId]) -> Self {
        let mut included = vec![false; g.n()];
        for &v in nodes {
            included[v] = true;
        }
        Self::new(g, &included)
    }

    /// The compacted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Parent id of local node `i`.
    pub fn to_parent(&self, i: usize) -> NodeId {
        self.to_parent[i]
    }

    /// Local id of parent node `v`, if included.
    pub fn to_local(&self, v: NodeId) -> Option<usize> {
        let i = self.from_parent[v];
        (i != usize::MAX).then_some(i)
    }

    /// Number of included nodes.
    pub fn n(&self) -> usize {
        self.to_parent.len()
    }

    /// Lifts a local boolean labelling (e.g. an MIS of the subgraph) back
    /// to parent ids.
    pub fn lift(&self, local: &[bool]) -> Vec<NodeId> {
        assert_eq!(local.len(), self.n());
        local
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(self.to_parent[i]))
            .collect()
    }
}

/// A mutable *active set* view of a graph: the paper's `VIB` with
/// `Γ_IB(v)` and `deg_IB(v)` queries.
///
/// Deactivation is one-way (nodes never reactivate), which lets active
/// degrees be maintained incrementally in `O(deg)` per deactivation.
///
/// # Example
///
/// ```
/// use arbmis_graph::{gen, ActiveView};
///
/// let g = gen::star(5);
/// let mut view = ActiveView::new(&g);
/// assert_eq!(view.active_degree(0), 4);
/// view.deactivate(1);
/// view.deactivate(2);
/// assert_eq!(view.active_degree(0), 2);
/// assert_eq!(view.active_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct ActiveView<'a> {
    graph: &'a Graph,
    active: Vec<bool>,
    active_degree: Vec<usize>,
    active_count: usize,
}

impl<'a> ActiveView<'a> {
    /// Creates a view with every node active.
    pub fn new(graph: &'a Graph) -> Self {
        let n = graph.n();
        ActiveView {
            graph,
            active: vec![true; n],
            active_degree: (0..n).map(|v| graph.degree(v)).collect(),
            active_count: n,
        }
    }

    /// Creates a view with exactly the nodes of `mask` active.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != graph.n()`.
    pub fn from_mask(graph: &'a Graph, mask: &[bool]) -> Self {
        assert_eq!(mask.len(), graph.n());
        let n = graph.n();
        let active_degree = (0..n)
            .map(|v| graph.neighbors(v).iter().filter(|&&u| mask[u]).count())
            .collect();
        ActiveView {
            graph,
            active: mask.to_vec(),
            active_degree,
            active_count: mask.iter().filter(|&&b| b).count(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Whether `v` is still active.
    #[inline]
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active[v]
    }

    /// Number of active nodes.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// `deg_IB(v)`: number of active neighbors of `v`. Maintained
    /// incrementally; meaningful for inactive `v` too (their count is still
    /// updated, matching `Γ_IB` semantics for analysis code).
    #[inline]
    pub fn active_degree(&self, v: NodeId) -> usize {
        self.active_degree[v]
    }

    /// Iterates over the active neighbors of `v` (`Γ_IB(v)`).
    pub fn active_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(move |&u| self.active[u])
    }

    /// Iterates over all active nodes.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.graph.n()).filter(move |&v| self.active[v])
    }

    /// Deactivates `v` (idempotent). `O(deg(v))` to update neighbor
    /// degrees.
    pub fn deactivate(&mut self, v: NodeId) {
        if !self.active[v] {
            return;
        }
        self.active[v] = false;
        self.active_count -= 1;
        for &u in self.graph.neighbors(v) {
            self.active_degree[u] -= 1;
        }
    }

    /// Maximum active degree over *active* nodes (`Δ_IB`), 0 if none.
    pub fn max_active_degree(&self) -> usize {
        self.active_nodes()
            .map(|v| self.active_degree[v])
            .max()
            .unwrap_or(0)
    }

    /// Snapshot of the activity mask.
    pub fn mask(&self) -> &[bool] {
        &self.active
    }

    /// Compacts the current active set into a standalone subgraph.
    pub fn to_induced(&self) -> InducedSubgraph {
        InducedSubgraph::new(self.graph, &self.active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn induced_subgraph_of_path() {
        let g = gen::path(6);
        let sub = InducedSubgraph::new(&g, &[true, true, false, true, true, true]);
        assert_eq!(sub.n(), 5);
        // Local graph: 0-1 (from 0-1), and 3-4-5 -> locals 2-3-4 chain.
        assert_eq!(sub.graph().m(), 3);
        assert_eq!(sub.to_parent(2), 3);
        assert_eq!(sub.to_local(3), Some(2));
        assert_eq!(sub.to_local(2), None);
    }

    #[test]
    fn from_nodes_matches_mask() {
        let g = gen::cycle(6);
        let a = InducedSubgraph::from_nodes(&g, &[0, 1, 2]);
        let b = InducedSubgraph::new(&g, &[true, true, true, false, false, false]);
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn lift_roundtrip() {
        let g = gen::path(5);
        let sub = InducedSubgraph::new(&g, &[false, true, true, true, false]);
        let lifted = sub.lift(&[true, false, true]);
        assert_eq!(lifted, vec![1, 3]);
    }

    #[test]
    fn active_view_degrees_track_deactivation() {
        let g = gen::cycle(5);
        let mut view = ActiveView::new(&g);
        assert_eq!(view.max_active_degree(), 2);
        view.deactivate(0);
        assert_eq!(view.active_degree(1), 1);
        assert_eq!(view.active_degree(4), 1);
        assert_eq!(view.active_degree(2), 2);
        assert_eq!(view.active_count(), 4);
        // Idempotent.
        view.deactivate(0);
        assert_eq!(view.active_count(), 4);
    }

    #[test]
    fn active_neighbors_filtered() {
        let g = gen::star(4);
        let mut view = ActiveView::new(&g);
        view.deactivate(2);
        let nbrs: Vec<_> = view.active_neighbors(0).collect();
        assert_eq!(nbrs, vec![1, 3]);
    }

    #[test]
    fn to_induced_compacts_active_set() {
        let g = gen::path(4);
        let mut view = ActiveView::new(&g);
        view.deactivate(1);
        let sub = view.to_induced();
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.graph().m(), 1); // only 2-3 survives
    }

    #[test]
    fn from_mask_view() {
        let g = gen::cycle(6);
        let view = ActiveView::from_mask(&g, &[true, false, true, true, false, false]);
        assert_eq!(view.active_count(), 3);
        assert_eq!(view.active_degree(2), 1); // only neighbor 3 active
        assert_eq!(view.active_degree(3), 1);
        assert_eq!(view.active_degree(0), 0);
        assert!(!view.is_active(1));
    }

    #[test]
    fn empty_view() {
        let g = crate::Graph::empty(0);
        let view = ActiveView::new(&g);
        assert_eq!(view.active_count(), 0);
        assert_eq!(view.max_active_degree(), 0);
    }
}
