//! Incremental construction of [`Graph`] values.

use crate::graph::{Graph, NodeId};

/// Builder for [`Graph`].
///
/// Collects undirected edges (in any order/direction, duplicates allowed)
/// and produces a normalized CSR graph. Self loops are rejected eagerly so
/// the error points at the offending insertion.
///
/// # Example
///
/// ```
/// use arbmis_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(2, 1); // duplicate, merged
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder pre-sized for roughly `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes this builder was created with.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edge insertions so far (duplicates counted).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Records the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self loop) or either endpoint is `>= n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(u != v, "self loop on node {u} rejected");
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        self
    }

    /// Records the edge `{u, v}` only if both checks pass, returning whether
    /// it was accepted. Unlike [`add_edge`](Self::add_edge) this never
    /// panics; it is convenient inside randomized generators that may
    /// propose loops.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || u >= self.n || v >= self.n {
            return false;
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        true
    }

    /// Adds all edges from an iterator. Panics under the same conditions as
    /// [`add_edge`](Self::add_edge).
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) -> &mut Self {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Finalizes into a normalized [`Graph`]: sorts, deduplicates, and
    /// lays out CSR arrays. `O(m log m + n)`.
    pub fn build(&self) -> Graph {
        let n = self.n;
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        edges.dedup();

        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + degree[v]);
        }
        let mut adj = vec![0 as NodeId; 2 * edges.len()];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v) in &edges {
            adj[cursor[u]] = v;
            cursor[u] += 1;
            adj[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Edges were inserted in sorted (u, v) order with u < v, so each
        // node's list of larger neighbors is sorted, but smaller neighbors
        // interleave; sort each slice to restore the CSR invariant.
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph::from_csr_unchecked(offsets, adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_csr() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(4, 0).add_edge(0, 2).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 4]);
    }

    #[test]
    fn dedups_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        assert_eq!(b.pending_edges(), 2);
        assert_eq!(b.build().m(), 1);
    }

    #[test]
    fn try_add_edge_filters() {
        let mut b = GraphBuilder::new(3);
        assert!(!b.try_add_edge(1, 1));
        assert!(!b.try_add_edge(0, 3));
        assert!(b.try_add_edge(0, 2));
        assert_eq!(b.build().m(), 1);
    }

    #[test]
    fn extend_edges_works() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 3)]);
        assert_eq!(b.build().m(), 3);
    }

    #[test]
    fn build_is_repeatable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g1 = b.build();
        b.add_edge(1, 2);
        let g2 = b.build();
        assert_eq!(g1.m(), 1);
        assert_eq!(g2.m(), 2);
    }

    #[test]
    fn with_capacity_builder() {
        let mut b = GraphBuilder::with_capacity(10, 20);
        assert_eq!(b.n(), 10);
        b.add_edge(0, 9);
        assert_eq!(b.build().m(), 1);
    }
}
