//! Band-power graphs `G^[a,b]`.
//!
//! The paper's Lemma 3.7 analyzes the "bad" set `B` through the graph
//! `G^[7,13]`, which connects two nodes iff their distance in `G` lies in
//! the band `[7, 13]`. Components of `B` in `G^[7,13]` witness trees that
//! the union bound counts. This module materializes such band graphs (and
//! plain powers `G^[1,b]`) by truncated BFS from every node.

use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;
use std::collections::VecDeque;

/// Builds `G^[lo, hi]`: nodes of `g`, edges between pairs at distance
/// `d ∈ [lo, hi]` in `g`. `O(n · (ball size at radius hi))`.
///
/// # Panics
///
/// Panics if `lo == 0` or `lo > hi`.
///
/// ```
/// let p = arbmis_graph::gen::path(6);
/// let band = arbmis_graph::powerband::power_band(&p, 2, 3);
/// assert!(band.has_edge(0, 2));
/// assert!(band.has_edge(0, 3));
/// assert!(!band.has_edge(0, 1));
/// assert!(!band.has_edge(0, 4));
/// ```
pub fn power_band(g: &Graph, lo: usize, hi: usize) -> Graph {
    assert!(lo >= 1, "lo must be >= 1");
    assert!(lo <= hi, "band [{lo},{hi}] is empty");
    let n = g.n();
    let mut b = GraphBuilder::new(n);
    let mut dist = vec![usize::MAX; n];
    let mut touched: Vec<NodeId> = Vec::new();
    let mut queue = VecDeque::new();
    for src in 0..n {
        dist[src] = 0;
        touched.push(src);
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            if dist[u] == hi {
                continue;
            }
            for &v in g.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    touched.push(v);
                    queue.push_back(v);
                    if dist[v] >= lo && v > src {
                        b.add_edge(src, v);
                    }
                }
            }
        }
        for &t in &touched {
            dist[t] = usize::MAX;
        }
        touched.clear();
    }
    b.build()
}

/// Band power restricted to a node subset: like [`power_band`] but only
/// BFS-ing from (and connecting) nodes with `included[v] == true`.
/// Distances are still measured in the *full* graph `g`, matching the
/// paper's use (distances between bad nodes are graph distances).
pub fn power_band_of_subset(g: &Graph, lo: usize, hi: usize, included: &[bool]) -> Graph {
    assert!(lo >= 1, "lo must be >= 1");
    assert!(lo <= hi, "band [{lo},{hi}] is empty");
    assert_eq!(included.len(), g.n());
    let n = g.n();
    let mut b = GraphBuilder::new(n);
    let mut dist = vec![usize::MAX; n];
    let mut touched: Vec<NodeId> = Vec::new();
    let mut queue = VecDeque::new();
    for src in 0..n {
        if !included[src] {
            continue;
        }
        dist[src] = 0;
        touched.push(src);
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            if dist[u] == hi {
                continue;
            }
            for &v in g.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    touched.push(v);
                    queue.push_back(v);
                    if dist[v] >= lo && v > src && included[v] {
                        b.add_edge(src, v);
                    }
                }
            }
        }
        for &t in &touched {
            dist[t] = usize::MAX;
        }
        touched.clear();
    }
    b.build()
}

/// The plain `b`-th power `G^b = G^[1,b]`.
pub fn power(g: &Graph, b: usize) -> Graph {
    power_band(g, 1, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::traversal;

    #[test]
    fn band_on_path_matches_distances() {
        let g = gen::path(10);
        let band = power_band(&g, 3, 5);
        for u in 0..10usize {
            for v in (u + 1)..10 {
                let d = v - u;
                assert_eq!(band.has_edge(u, v), (3..=5).contains(&d), "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn power_one_is_original() {
        let g = gen::cycle(8);
        assert_eq!(power(&g, 1), g);
    }

    #[test]
    fn power_two_of_cycle() {
        let g = gen::cycle(8);
        let g2 = power(&g, 2);
        assert!(g2.has_edge(0, 2));
        assert!(g2.has_edge(0, 1));
        assert!(!g2.has_edge(0, 3));
        assert_eq!(g2.degree(0), 4);
    }

    #[test]
    #[should_panic]
    fn zero_lo_rejected() {
        let _ = power_band(&gen::path(3), 0, 2);
    }

    #[test]
    #[should_panic]
    fn inverted_band_rejected() {
        let _ = power_band(&gen::path(3), 3, 2);
    }

    #[test]
    fn subset_band_uses_full_graph_distances() {
        // Path 0-1-2-3-4; include only endpoints {0, 4}: distance 4.
        let g = gen::path(5);
        let included = vec![true, false, false, false, true];
        let band = power_band_of_subset(&g, 4, 6, &included);
        assert!(band.has_edge(0, 4));
        let band2 = power_band_of_subset(&g, 5, 6, &included);
        assert_eq!(band2.m(), 0);
        // Excluded nodes never get edges.
        assert_eq!(band.degree(2), 0);
    }

    #[test]
    fn lemma_3_7_band_shape() {
        // G^[7,13] of a long path: node i connects to i±7..i±13.
        let g = gen::path(40);
        let band = power_band(&g, 7, 13);
        assert!(band.has_edge(0, 7));
        assert!(band.has_edge(0, 13));
        assert!(!band.has_edge(0, 6));
        assert!(!band.has_edge(0, 14));
        // Interior node degree = 14 (7 each side).
        assert_eq!(band.degree(20), 14);
        assert!(traversal::is_connected(&band));
    }
}
