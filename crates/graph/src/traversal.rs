//! Breadth-first search, connectivity, and component structure.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Connected components as a labelling: `labels[v]` is the component index
/// of `v` (component indices are `0..count`, assigned in order of the
/// smallest node id they contain).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    labels: Vec<usize>,
    count: usize,
}

impl Components {
    /// Component label of node `v`.
    pub fn label(&self, v: NodeId) -> usize {
        self.labels[v]
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Size of each component, indexed by label. Nodes excluded from a
    /// subset computation (label `usize::MAX`) are skipped.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            if l != usize::MAX {
                sizes[l] += 1;
            }
        }
        sizes
    }

    /// The members of each component, indexed by label. Excluded nodes
    /// (label `usize::MAX`) appear in no component.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut members = vec![Vec::new(); self.count];
        for (v, &l) in self.labels.iter().enumerate() {
            if l != usize::MAX {
                members[l].push(v);
            }
        }
        members
    }

    /// Size of the largest component (0 if the graph is empty).
    pub fn max_size(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

/// Computes connected components via BFS. `O(n + m)`.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.n();
    let mut labels = vec![usize::MAX; n];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v] == usize::MAX {
                    labels[v] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Components { labels, count }
}

/// Connected components of the subgraph induced by `included` (nodes with
/// `included[v] == false` are ignored). Labels for excluded nodes are
/// `usize::MAX`; component indices count only included components.
pub fn components_of_subset(g: &Graph, included: &[bool]) -> Components {
    assert_eq!(included.len(), g.n());
    let n = g.n();
    let mut labels = vec![usize::MAX; n];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if !included[start] || labels[start] != usize::MAX {
            continue;
        }
        labels[start] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if included[v] && labels[v] == usize::MAX {
                    labels[v] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Components { labels, count }
}

/// Sizes of the connected components of the subgraph induced by `included`.
pub fn subset_component_sizes(g: &Graph, included: &[bool]) -> Vec<usize> {
    let comps = components_of_subset(g, included);
    let mut sizes = vec![0usize; comps.count()];
    for v in 0..g.n() {
        if included[v] {
            sizes[comps.label(v)] += 1;
        }
    }
    sizes
}

/// `true` iff the graph is connected (vacuously true for `n <= 1`).
pub fn is_connected(g: &Graph) -> bool {
    g.n() <= 1 || connected_components(g).count() == 1
}

/// `true` iff the graph contains no cycle (i.e., is a forest).
pub fn is_forest(g: &Graph) -> bool {
    // A graph is a forest iff m = n - (#components).
    g.m() + connected_components(g).count() == g.n()
}

/// BFS distances from `source`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All nodes within distance `radius` of `source` (including `source`),
/// with their distances. BFS truncated at depth `radius`.
pub fn ball(g: &Graph, source: NodeId, radius: usize) -> Vec<(NodeId, usize)> {
    let mut dist = std::collections::HashMap::new();
    let mut queue = VecDeque::new();
    dist.insert(source, 0usize);
    queue.push_back(source);
    let mut out = vec![(source, 0)];
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        if du == radius {
            continue;
        }
        for &v in g.neighbors(u) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(du + 1);
                out.push((v, du + 1));
                queue.push_back(v);
            }
        }
    }
    out
}

/// Eccentricity of `source`: max finite BFS distance. Returns `None` when
/// some node is unreachable.
pub fn eccentricity(g: &Graph, source: NodeId) -> Option<usize> {
    let dist = bfs_distances(g, source);
    if dist.contains(&usize::MAX) {
        None
    } else {
        dist.into_iter().max()
    }
}

/// Two-sweep diameter lower bound: BFS from `start`, then BFS from the
/// farthest node found. Exact on trees; a lower bound in general.
pub fn diameter_lower_bound(g: &Graph, start: NodeId) -> usize {
    if g.n() == 0 {
        return 0;
    }
    let d1 = bfs_distances(g, start);
    let far = (0..g.n())
        .filter(|&v| d1[v] != usize::MAX)
        .max_by_key(|&v| d1[v])
        .unwrap_or(start);
    let d2 = bfs_distances(g, far);
    (0..g.n())
        .filter(|&v| d2[v] != usize::MAX)
        .map(|v| d2[v])
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn components_of_disjoint_paths() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let comps = connected_components(&g);
        assert_eq!(comps.count(), 3);
        let mut sizes = comps.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(comps.max_size(), 3);
        assert_eq!(comps.label(0), comps.label(2));
        assert_ne!(comps.label(0), comps.label(5));
    }

    #[test]
    fn members_partition_nodes() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let comps = connected_components(&g);
        let members = comps.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn subset_components() {
        // Path 0-1-2-3-4 with node 2 excluded splits into two pairs.
        let g = gen::path(5);
        let included = vec![true, true, false, true, true];
        let sizes = subset_component_sizes(&g, &included);
        assert_eq!(sizes.len(), 2);
        assert!(sizes.iter().all(|&s| s == 2));
        let comps = components_of_subset(&g, &included);
        assert_eq!(comps.label(2), usize::MAX);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&gen::path(10)));
        assert!(!is_connected(&Graph::from_edges(4, &[(0, 1), (2, 3)])));
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
    }

    #[test]
    fn forest_checks() {
        assert!(is_forest(&gen::path(10)));
        assert!(is_forest(&Graph::empty(4)));
        assert!(!is_forest(&gen::cycle(5)));
        assert!(is_forest(&Graph::from_edges(5, &[(0, 1), (2, 3)])));
    }

    #[test]
    fn bfs_on_path() {
        let g = gen::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn ball_radius_limits() {
        let g = gen::path(7);
        let b = ball(&g, 3, 2);
        let mut nodes: Vec<_> = b.iter().map(|&(v, _)| v).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![1, 2, 3, 4, 5]);
        assert!(b.iter().all(|&(_, d)| d <= 2));
    }

    #[test]
    fn diameter_of_path_exact() {
        let g = gen::path(9);
        assert_eq!(diameter_lower_bound(&g, 4), 8);
        assert_eq!(eccentricity(&g, 0), Some(8));
    }

    #[test]
    fn diameter_of_cycle() {
        let g = gen::cycle(10);
        assert_eq!(diameter_lower_bound(&g, 0), 5);
    }
}
