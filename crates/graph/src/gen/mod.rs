//! Graph generators — the workload side of every experiment.
//!
//! The paper's algorithm targets graphs of **bounded arboricity**: trees,
//! planar graphs, graphs of bounded treewidth/genus, minor-closed families.
//! The generators here cover:
//!
//! * deterministic topologies: [`path`], [`cycle`], [`star`], [`complete`],
//!   [`complete_bipartite`], [`grid`], [`torus`], [`hypercube`],
//!   [`binary_tree`], [`caterpillar`], [`broom`];
//! * random trees: [`random_tree_prufer`] (uniform over labelled trees) and
//!   [`random_tree_attachment`];
//! * random sparse families with arboricity ≤ α *by construction*:
//!   [`forest_union`] (union of α random spanning forests),
//!   [`random_ktree`] (k-trees: treewidth k, arboricity ≤ k),
//!   [`apollonian`] (planar 3-trees, arboricity ≤ 3),
//!   [`barabasi_albert`] (each new node adds ≤ m edges, degeneracy ≤ m);
//! * dense/irregular baselines: [`gnp`] (Erdős–Rényi) and
//!   [`random_regular`] (configuration model with rejection).
//!
//! All random generators take a caller-supplied [`rand::Rng`] so experiment
//! runs are reproducible from a seed.

mod basic;
mod family;
mod geometric;
mod random;
mod sparse;
mod tree;

pub use basic::{
    binary_tree, broom, caterpillar, complete, complete_bipartite, cycle, grid, hypercube, path,
    star, torus,
};
pub use family::{GraphFamily, GraphSpec};
pub use geometric::{powerlaw_cluster, random_geometric, ring_of_cliques, series_parallel};
pub use random::{gnp, gnp_with_expected_degree, random_bipartite, random_regular};
pub use sparse::{apollonian, barabasi_albert, forest_union, random_ktree, random_planarish};
pub use tree::{random_forest, random_tree_attachment, random_tree_prufer};
