//! Geometric and compound topologies.

use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;
use rand::Rng;

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs at Euclidean distance ≤ `radius`. The standard model of
/// wireless/sensor networks — the motivating setting for distributed MIS
/// (MIS = one-hop clustering). Built with a grid index in expected
/// `O(n + m)`.
///
/// # Panics
///
/// Panics if `radius` is not positive and finite.
pub fn random_geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Graph {
    assert!(radius > 0.0 && radius.is_finite(), "bad radius {radius}");
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let cell = radius.max(1e-9);
    let cells_per_side = (1.0 / cell).ceil().max(1.0) as i64;
    let key = |x: f64, y: f64| -> (i64, i64) {
        (
            ((x / cell) as i64).min(cells_per_side - 1),
            ((y / cell) as i64).min(cells_per_side - 1),
        )
    };
    // Dense Vec-indexed grid: a counting-sort CSR over cells_per_side²
    // cells keeps the hot 3×3 scan hash-free, with per-cell buckets in
    // ascending node order — exactly the insertion order the previous
    // HashMap grid produced, so the edge output is unchanged. Pathological
    // radii where the cell count dwarfs the point count fall back to a
    // HashMap of only the occupied cells.
    let cps = cells_per_side as usize;
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    if cps.checked_mul(cps).is_some_and(|c| c <= 4 * n + 1024) {
        let ncells = cps * cps;
        let cidx: Vec<usize> = pts
            .iter()
            .map(|&(x, y)| {
                let (cx, cy) = key(x, y);
                cx as usize * cps + cy as usize
            })
            .collect();
        let mut start = vec![0usize; ncells + 1];
        for &c in &cidx {
            start[c + 1] += 1;
        }
        for i in 0..ncells {
            start[i + 1] += start[i];
        }
        let mut bucket = vec![0 as NodeId; n];
        let mut cursor = start.clone();
        for (v, &c) in cidx.iter().enumerate() {
            bucket[cursor[c]] = v;
            cursor[c] += 1;
        }
        for (v, &(x, y)) in pts.iter().enumerate() {
            let (cx, cy) = key(x, y);
            for dx in -1..=1i64 {
                for dy in -1..=1i64 {
                    let (nx, ny) = (cx + dx, cy + dy);
                    if nx < 0 || ny < 0 || nx >= cells_per_side || ny >= cells_per_side {
                        continue;
                    }
                    let c = nx as usize * cps + ny as usize;
                    for &u in &bucket[start[c]..start[c + 1]] {
                        if u > v {
                            let (ux, uy) = pts[u];
                            let (ddx, ddy) = (ux - x, uy - y);
                            if ddx * ddx + ddy * ddy <= r2 {
                                b.add_edge(v, u);
                            }
                        }
                    }
                }
            }
        }
    } else {
        let mut grid: std::collections::HashMap<(i64, i64), Vec<NodeId>> =
            std::collections::HashMap::new();
        for (v, &(x, y)) in pts.iter().enumerate() {
            grid.entry(key(x, y)).or_default().push(v);
        }
        for (v, &(x, y)) in pts.iter().enumerate() {
            let (cx, cy) = key(x, y);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    if let Some(bucket) = grid.get(&(cx + dx, cy + dy)) {
                        for &u in bucket {
                            if u > v {
                                let (ux, uy) = pts[u];
                                let (ddx, ddy) = (ux - x, uy - y);
                                if ddx * ddx + ddy * ddy <= r2 {
                                    b.add_edge(v, u);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    b.build()
}

/// Random series-parallel graph on `n` nodes: starts from a single edge
/// and repeatedly applies random series (subdivide an edge) or parallel
/// (duplicate an edge endpoint via a new two-path) expansions.
/// Treewidth ≤ 2, hence arboricity ≤ 2.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn series_parallel<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 2, "series-parallel graphs need n >= 2");
    // Maintain the terminal-pair list of edges; each expansion consumes
    // one edge slot and adds one node.
    let mut edges: Vec<(NodeId, NodeId)> = vec![(0, 1)];
    let mut next = 2usize;
    while next < n {
        let idx = rng.gen_range(0..edges.len());
        let (u, v) = edges[idx];
        let w = next;
        next += 1;
        if rng.gen_bool(0.5) {
            // Series: replace u—v by u—w—v.
            edges.swap_remove(idx);
            edges.push((u, w));
            edges.push((w, v));
        } else {
            // Parallel-ish: add a new path u—w—v alongside the edge.
            edges.push((u, w));
            edges.push((w, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Ring of `k`-cliques: `count` cliques of size `k`, consecutive cliques
/// joined by a single bridge edge, closed into a ring. Arboricity
/// ⌈k/2⌉-ish (clique-dominated); a worst-case-ish input for shattering
/// since cliques decide slowly relative to their size.
///
/// # Panics
///
/// Panics if `k < 1` or `count < 1`.
pub fn ring_of_cliques(count: usize, k: usize) -> Graph {
    assert!(k >= 1 && count >= 1);
    let n = count * k;
    let mut b = GraphBuilder::with_capacity(n, count * k * k / 2 + count);
    for c in 0..count {
        let base = c * k;
        for i in 0..k {
            for j in (i + 1)..k {
                b.add_edge(base + i, base + j);
            }
        }
        if count > 1 {
            let next_base = ((c + 1) % count) * k;
            b.try_add_edge(base + k - 1, next_base);
        }
    }
    b.build()
}

/// Holme–Kim power-law cluster graph: Barabási–Albert attachment where
/// each of the `m` links is followed, with probability `p_triangle`, by a
/// triad-closing link to a random neighbor of the just-linked target.
/// Heavy-tailed *and* clustered; degeneracy ≤ 2m.
///
/// # Panics
///
/// Panics if `m == 0`, `n < m + 1`, or `p_triangle ∉ [0,1]`.
pub fn powerlaw_cluster<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    p_triangle: f64,
    rng: &mut R,
) -> Graph {
    assert!(m >= 1, "attachment m must be >= 1");
    assert!(n > m, "need at least m+1 nodes");
    assert!((0.0..=1.0).contains(&p_triangle));
    let mut b = GraphBuilder::with_capacity(n, m * n);
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    let link = |b: &mut GraphBuilder,
                adj: &mut Vec<Vec<NodeId>>,
                endpoints: &mut Vec<NodeId>,
                u: NodeId,
                v: NodeId|
     -> bool {
        if u == v || adj[u].contains(&v) {
            return false;
        }
        b.add_edge(u, v);
        adj[u].push(v);
        adj[v].push(u);
        endpoints.push(u);
        endpoints.push(v);
        true
    };
    for v in 1..=m {
        link(&mut b, &mut adj, &mut endpoints, 0, v);
    }
    for v in (m + 1)..n {
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < m && guard < 50 * m {
            guard += 1;
            let target = endpoints[rng.gen_range(0..endpoints.len())];
            if !link(&mut b, &mut adj, &mut endpoints, v, target) {
                continue;
            }
            added += 1;
            // Triad step.
            if added < m && rng.gen_bool(p_triangle) && !adj[target].is_empty() {
                let w = adj[target][rng.gen_range(0..adj[target].len())];
                if link(&mut b, &mut adj, &mut endpoints, v, w) {
                    added += 1;
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::check_well_formed;
    use crate::{arboricity, stats, traversal};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn geometric_matches_brute_force() {
        let mut r = rng(1);
        let g = random_geometric(150, 0.15, &mut r);
        assert!(check_well_formed(&g).is_ok());
        // Rebuild brute force with the same RNG stream.
        let mut r2 = rng(1);
        let pts: Vec<(f64, f64)> = (0..150)
            .map(|_| (r2.gen::<f64>(), r2.gen::<f64>()))
            .collect();
        for u in 0..150usize {
            for v in (u + 1)..150 {
                let (dx, dy) = (pts[u].0 - pts[v].0, pts[u].1 - pts[v].1);
                let within = dx * dx + dy * dy <= 0.15f64 * 0.15;
                assert_eq!(g.has_edge(u, v), within, "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn geometric_tiny_radius_takes_sparse_fallback() {
        // radius 1e-6 → 10¹² cells ≫ 4n: the HashMap fallback must agree
        // with brute force just like the dense path.
        let mut r = rng(7);
        let g = random_geometric(80, 1e-6, &mut r);
        assert!(check_well_formed(&g).is_ok());
        let mut r2 = rng(7);
        let pts: Vec<(f64, f64)> = (0..80)
            .map(|_| (r2.gen::<f64>(), r2.gen::<f64>()))
            .collect();
        for u in 0..80usize {
            for v in (u + 1)..80 {
                let (dx, dy) = (pts[u].0 - pts[v].0, pts[u].1 - pts[v].1);
                assert_eq!(g.has_edge(u, v), dx * dx + dy * dy <= 1e-12, "({u},{v})");
            }
        }
    }

    #[test]
    fn geometric_density_scales_with_radius() {
        let mut r = rng(2);
        let sparse = random_geometric(400, 0.03, &mut r);
        let dense = random_geometric(400, 0.12, &mut r);
        assert!(dense.m() > 4 * sparse.m().max(1));
    }

    #[test]
    fn series_parallel_arboricity_two() {
        for seed in 0..4 {
            let g = series_parallel(300, &mut rng(seed));
            assert!(arboricity::degeneracy(&g) <= 2, "seed {seed}");
            assert!(traversal::is_connected(&g));
            assert!(check_well_formed(&g).is_ok());
        }
    }

    #[test]
    fn series_parallel_minimum() {
        let g = series_parallel(2, &mut rng(0));
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn ring_of_cliques_structure() {
        let g = ring_of_cliques(6, 5);
        assert_eq!(g.n(), 30);
        assert!(traversal::is_connected(&g));
        // Each clique contributes C(5,2) = 10 edges plus 6 bridges.
        assert_eq!(g.m(), 6 * 10 + 6);
        let s = stats::GraphStats::compute(&g);
        assert!(s.triangles >= 6 * 10); // C(5,3) = 10 per clique
    }

    #[test]
    fn ring_of_single_clique() {
        let g = ring_of_cliques(1, 4);
        assert_eq!(g.m(), 6);
    }

    #[test]
    fn powerlaw_cluster_properties() {
        let mut r = rng(5);
        let g = powerlaw_cluster(600, 3, 0.8, &mut r);
        assert!(check_well_formed(&g).is_ok());
        assert!(traversal::is_connected(&g));
        assert!(arboricity::degeneracy(&g) <= 6);
        // The triad step should produce real clustering.
        let s = stats::GraphStats::compute(&g);
        assert!(s.clustering > 0.05, "clustering {}", s.clustering);
        assert!(s.max_degree > 20, "heavy tail expected");
    }

    #[test]
    #[should_panic]
    fn powerlaw_rejects_bad_p() {
        let _ = powerlaw_cluster(10, 2, 1.5, &mut rng(0));
    }
}
