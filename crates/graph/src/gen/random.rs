//! Random graph models without an arboricity guarantee: Erdős–Rényi,
//! random bipartite, and configuration-model regular graphs. These serve as
//! dense/irregular baselines in the comparison experiments.

use crate::graph::Graph;
use crate::GraphBuilder;
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: every unordered pair is an edge independently
/// with probability `p`.
///
/// Uses the geometric skipping method of Batagelj–Brandes, so the cost is
/// `O(n + m)` rather than `O(n²)` for sparse `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
    let mut b = GraphBuilder::new(n);
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // Walk the strictly-upper-triangular pair sequence with geometric skips.
    let log_q = (1.0 - p).ln();
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v as i64 && v < n {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            b.add_edge(w as usize, v);
        }
    }
    b.build()
}

/// `G(n, p)` parameterized by expected average degree `d`: `p = d/(n-1)`.
pub fn gnp_with_expected_degree<R: Rng + ?Sized>(n: usize, d: f64, rng: &mut R) -> Graph {
    if n < 2 {
        return Graph::empty(n);
    }
    let p = (d / (n - 1) as f64).clamp(0.0, 1.0);
    gnp(n, p, rng)
}

/// Random bipartite graph: sides of size `a` and `b`, each cross pair an
/// edge independently with probability `p`.
pub fn random_bipartite<R: Rng + ?Sized>(a: usize, b_size: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
    let mut b = GraphBuilder::new(a + b_size);
    for u in 0..a {
        for v in 0..b_size {
            if rng.gen_bool(p) {
                b.add_edge(u, a + v);
            }
        }
    }
    b.build()
}

/// Random `d`-regular graph via the configuration model with rejection of
/// loops and multi-edges. Retries the whole pairing until simple, so it is
/// practical for `d ≪ √n`.
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`, which make a simple `d`-regular
/// graph impossible.
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(
        (n * d).is_multiple_of(2),
        "n*d must be even for a d-regular graph"
    );
    assert!(d < n, "d must be < n");
    if d == 0 || n == 0 {
        return Graph::empty(n);
    }
    // Stubs: node v owns stubs v*d..(v+1)*d.
    let mut stubs: Vec<usize> = (0..n * d).collect();
    'retry: for _attempt in 0..1000 {
        // Fisher-Yates shuffle, then pair consecutive stubs.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut b = GraphBuilder::with_capacity(n, n * d / 2);
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0] / d, pair[1] / d);
            if u == v {
                continue 'retry;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if !seen.insert(key) {
                continue 'retry;
            }
            b.add_edge(u, v);
        }
        return b.build();
    }
    panic!("random_regular: failed to produce a simple graph after 1000 attempts (n={n}, d={d})");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::check_well_formed;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, &mut rng(0)).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng(0)).m(), 45);
        assert_eq!(gnp(1, 0.5, &mut rng(0)).m(), 0);
        assert_eq!(gnp(0, 0.5, &mut rng(0)).n(), 0);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, &mut rng(11));
        let expect = p * (n * (n - 1) / 2) as f64;
        let sd = (expect * (1.0 - p)).sqrt();
        assert!(
            ((g.m() as f64) - expect).abs() < 6.0 * sd,
            "m={} expected~{expect}",
            g.m()
        );
        assert!(check_well_formed(&g).is_ok());
    }

    #[test]
    #[should_panic]
    fn gnp_rejects_bad_p() {
        let _ = gnp(5, 1.5, &mut rng(0));
    }

    #[test]
    fn gnp_expected_degree() {
        let g = gnp_with_expected_degree(500, 6.0, &mut rng(2));
        let avg = g.avg_degree();
        assert!((avg - 6.0).abs() < 1.5, "avg degree {avg} far from 6");
        assert_eq!(gnp_with_expected_degree(1, 4.0, &mut rng(2)).n(), 1);
    }

    #[test]
    fn bipartite_has_no_intra_side_edges() {
        let g = random_bipartite(20, 30, 0.3, &mut rng(3));
        for (u, v) in g.edges() {
            assert!(u < 20 && v >= 20, "intra-side edge ({u},{v})");
        }
    }

    #[test]
    fn regular_is_regular() {
        for &(n, d) in &[(10, 3), (20, 4), (30, 5), (8, 0)] {
            let g = random_regular(n, d, &mut rng(n as u64));
            assert!((0..n).all(|v| g.degree(v) == d), "not {d}-regular");
            assert!(check_well_formed(&g).is_ok());
        }
    }

    #[test]
    #[should_panic]
    fn regular_rejects_odd_total() {
        let _ = random_regular(5, 3, &mut rng(0));
    }

    #[test]
    #[should_panic]
    fn regular_rejects_d_ge_n() {
        let _ = random_regular(4, 4, &mut rng(0));
    }

    #[test]
    fn gnp_deterministic_under_seed() {
        let g1 = gnp(100, 0.1, &mut rng(42));
        let g2 = gnp(100, 0.1, &mut rng(42));
        assert_eq!(g1, g2);
    }
}
