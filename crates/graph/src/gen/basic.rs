//! Deterministic graph topologies.

use crate::graph::Graph;
use crate::GraphBuilder;

/// Path graph `P_n`: nodes `0..n` with edges `i — i+1`.
///
/// ```
/// let g = arbmis_graph::gen::path(5);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.degree(2), 2);
/// ```
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    b.build()
}

/// Cycle graph `C_n` (requires `n >= 3`; smaller `n` degrades to a path).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    if n >= 3 {
        b.add_edge(n - 1, 0);
    }
    b.build()
}

/// Star graph `K_{1,n-1}`: node 0 is the hub.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(0, i);
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`; the first `a` ids form one side.
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(a + b_size, a * b_size);
    for u in 0..a {
        for v in 0..b_size {
            b.add_edge(u, a + v);
        }
    }
    b.build()
}

/// `rows × cols` grid graph. Planar; arboricity ≤ 2.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// `rows × cols` toroidal grid (wrap-around). 4-regular when both sides ≥ 3.
pub fn torus(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r % rows) * cols + (c % cols);
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    if rows == 0 || cols == 0 {
        return b.build();
    }
    for r in 0..rows {
        for c in 0..cols {
            b.try_add_edge(id(r, c), id(r, c + 1));
            b.try_add_edge(id(r, c), id(r + 1, c));
        }
    }
    b.build()
}

/// `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::with_capacity(n, n * d as usize / 2);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1usize << bit);
            if u < v {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Complete binary tree on `n` nodes: node `i` has children `2i+1`, `2i+2`.
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(i, (i - 1) / 2);
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. A tree with large independent sets inside neighborhoods — the
/// structure the paper highlights as hard for pre-shattering algorithms.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..spine {
        b.add_edge(i - 1, i);
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            b.add_edge(s, next);
            next += 1;
        }
    }
    b.build()
}

/// Broom: a path of `handle` nodes ending in a star of `bristles` leaves.
pub fn broom(handle: usize, bristles: usize) -> Graph {
    let n = handle + bristles;
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..handle {
        b.add_edge(i - 1, i);
    }
    if handle > 0 {
        for j in 0..bristles {
            b.add_edge(handle - 1, handle + j);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::check_well_formed;
    use crate::traversal;

    #[test]
    fn path_structure() {
        let g = path(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 5);
        assert!(traversal::is_connected(&g));
        assert!(traversal::is_forest(&g));
    }

    #[test]
    fn cycle_structure() {
        let g = cycle(6);
        assert_eq!(g.m(), 6);
        assert!((0..6).all(|v| g.degree(v) == 2));
        assert!(!traversal::is_forest(&g));
        // degenerate sizes
        assert_eq!(cycle(2).m(), 1);
        assert_eq!(cycle(1).m(), 0);
    }

    #[test]
    fn star_structure() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_structure() {
        let g = complete(5);
        assert_eq!(g.m(), 10);
        assert!((0..5).all(|v| g.degree(v) == 4));
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert!((0..3).all(|v| g.degree(v) == 4));
        assert!((3..7).all(|v| g.degree(v) == 3));
    }

    #[test]
    fn grid_structure() {
        let g = grid(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 4 + 5 * 3); // (cols-1)*rows + (rows-1)*cols
        assert!(traversal::is_connected(&g));
        assert!(check_well_formed(&g).is_ok());
    }

    #[test]
    fn torus_structure() {
        let g = torus(4, 5);
        assert_eq!(g.n(), 20);
        assert!((0..20).all(|v| g.degree(v) == 4));
        // 2-row torus collapses wrap edges into simple edges
        let g2 = torus(2, 4);
        assert!(check_well_formed(&g2).is_ok());
        assert_eq!(torus(0, 3).n(), 0);
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert!((0..16).all(|v| g.degree(v) == 4));
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(15);
        assert_eq!(g.m(), 14);
        assert!(traversal::is_forest(&g));
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar(5, 3);
        assert_eq!(g.n(), 20);
        assert!(traversal::is_forest(&g));
        assert!(traversal::is_connected(&g));
        assert_eq!(g.degree(2), 2 + 3); // interior spine node
    }

    #[test]
    fn broom_structure() {
        let g = broom(4, 6);
        assert_eq!(g.n(), 10);
        assert!(traversal::is_forest(&g));
        assert_eq!(g.degree(3), 1 + 6);
    }
}
