//! Random families with arboricity bounded **by construction** — the
//! paper's input class.
//!
//! Each generator here ships a certificate of low arboricity: a union of α
//! forests has arboricity ≤ α by definition (Nash–Williams); a k-tree is
//! k-degenerate so its arboricity is ≤ k; Apollonian networks are planar
//! 3-trees (arboricity ≤ 3); a Barabási–Albert graph with attachment m is
//! m-degenerate.

use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;
use rand::seq::SliceRandom;
use rand::Rng;

/// Union of `alpha` independent random spanning forests on `n` nodes —
/// arboricity ≤ `alpha` by construction.
///
/// Each forest is an attachment tree with every edge kept with probability
/// 0.95, so forests overlap little and the realized arboricity is usually
/// exactly `alpha` for moderate `n`.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let g = arbmis_graph::gen::forest_union(500, 3, &mut rng);
/// assert!(arbmis_graph::arboricity::degeneracy(&g) <= 2 * 3 - 1);
/// ```
pub fn forest_union<R: Rng + ?Sized>(n: usize, alpha: usize, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, alpha * n);
    for _ in 0..alpha {
        // Random labelling per forest so the union is not parallel edges.
        let mut order: Vec<NodeId> = (0..n).collect();
        order.shuffle(rng);
        for i in 1..n {
            if rng.gen_bool(0.95) {
                let parent = order[rng.gen_range(0..i)];
                b.try_add_edge(order[i], parent);
            }
        }
    }
    b.build()
}

/// Random `k`-tree on `n` nodes: start from a `(k+1)`-clique, then each new
/// node is attached to a uniformly random existing `k`-clique. Treewidth
/// exactly `k` (for `n > k`), degeneracy `k`, arboricity ≤ `k`.
///
/// # Panics
///
/// Panics if `k == 0` or `n < k + 1`.
pub fn random_ktree<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Graph {
    assert!(k >= 1, "k must be >= 1");
    assert!(n > k, "need at least k+1={} nodes", k + 1);
    let mut b = GraphBuilder::with_capacity(n, k * n);
    // Seed clique on nodes 0..=k.
    for u in 0..=k {
        for v in (u + 1)..=k {
            b.add_edge(u, v);
        }
    }
    // Track the k-cliques available for attachment.
    let mut cliques: Vec<Vec<NodeId>> = Vec::with_capacity(1 + (n - k) * k);
    // All k-subsets of the seed clique.
    let seed: Vec<NodeId> = (0..=k).collect();
    for omit in 0..=k {
        let mut c = seed.clone();
        c.remove(omit);
        cliques.push(c);
    }
    for v in (k + 1)..n {
        let base = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &base {
            b.add_edge(v, u);
        }
        // New k-cliques: for each u in base, (base \ {u}) ∪ {v}.
        for omit in 0..base.len() {
            let mut c = base.clone();
            c[omit] = v;
            c.sort_unstable();
            cliques.push(c);
        }
    }
    b.build()
}

/// Random Apollonian network on `n` nodes (`n >= 3`): start from a
/// triangle; repeatedly pick a random face and insert a node connected to
/// its three corners. Planar, 3-degenerate, arboricity ≤ 3.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn apollonian<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 3, "apollonian networks need n >= 3");
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(0, 2);
    let mut faces: Vec<[NodeId; 3]> = vec![[0, 1, 2]];
    for v in 3..n {
        let idx = rng.gen_range(0..faces.len());
        let [a, bb, c] = faces.swap_remove(idx);
        b.add_edge(v, a);
        b.add_edge(v, bb);
        b.add_edge(v, c);
        faces.push([a, bb, v]);
        faces.push([a, c, v]);
        faces.push([bb, c, v]);
    }
    b.build()
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m` distinct existing nodes chosen with probability proportional to
/// degree. Degeneracy ≤ `m`, hence arboricity ≤ `m`; degree distribution is
/// heavy-tailed (large Δ), exercising the paper's high-degree cutoff ρ_k.
///
/// # Panics
///
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1, "attachment m must be >= 1");
    assert!(n > m, "need at least m+1={} nodes", m + 1);
    let mut b = GraphBuilder::with_capacity(n, m * n);
    // Repeated-endpoint list: sampling uniformly from it is
    // degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    // Seed: star on 0..=m (gives every seed node nonzero degree).
    for v in 1..=m {
        b.add_edge(0, v);
        endpoints.push(0);
        endpoints.push(v);
    }
    for v in (m + 1)..n {
        // Dedup with an order-preserving Vec, not a HashSet: iterating a
        // HashSet feeds hash order back into `endpoints`, making the graph
        // differ across processes (std's hasher is randomly seeded).
        let mut targets: Vec<NodeId> = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// A "planar-ish" sparse graph: an Apollonian network with a random
/// fraction `thin` of edges removed. Stays 3-degenerate (edge removal never
/// increases degeneracy) but has more varied component structure.
///
/// # Panics
///
/// Panics if `n < 3` or `thin` is not in `[0, 1]`.
pub fn random_planarish<R: Rng + ?Sized>(n: usize, thin: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&thin), "thin={thin} out of [0,1]");
    let full = apollonian(n, rng);
    let mut b = GraphBuilder::with_capacity(n, full.m());
    for (u, v) in full.edges() {
        if !rng.gen_bool(thin) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arboricity;
    use crate::props::check_well_formed;
    use crate::traversal;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn forest_union_degeneracy_bound() {
        for alpha in 1..=4 {
            let g = forest_union(400, alpha, &mut rng(alpha as u64));
            let d = arboricity::degeneracy(&g);
            assert!(d < 2 * alpha, "degeneracy {d} exceeds 2α-1 for α={alpha}");
            assert!(g.m() <= alpha * 399);
        }
    }

    #[test]
    fn forest_union_alpha_one_is_forest() {
        let g = forest_union(300, 1, &mut rng(7));
        assert!(traversal::is_forest(&g));
    }

    #[test]
    fn ktree_structure() {
        for k in 1..=4 {
            let g = random_ktree(200, k, &mut rng(k as u64));
            assert_eq!(g.m(), k * (k + 1) / 2 + (200 - k - 1) * k);
            assert_eq!(arboricity::degeneracy(&g), k);
            assert!(traversal::is_connected(&g));
        }
    }

    #[test]
    #[should_panic]
    fn ktree_rejects_small_n() {
        let _ = random_ktree(2, 3, &mut rng(0));
    }

    #[test]
    fn apollonian_structure() {
        let g = apollonian(300, &mut rng(2));
        // Apollonian networks are maximal planar: m = 3n - 6.
        assert_eq!(g.m(), 3 * 300 - 6);
        assert_eq!(arboricity::degeneracy(&g), 3);
        assert!(traversal::is_connected(&g));
        assert!(check_well_formed(&g).is_ok());
    }

    #[test]
    fn apollonian_min_size() {
        let g = apollonian(3, &mut rng(0));
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn ba_structure() {
        let g = barabasi_albert(500, 3, &mut rng(4));
        assert!(arboricity::degeneracy(&g) <= 3);
        assert!(traversal::is_connected(&g));
        // Heavy tail: max degree well above attachment parameter.
        assert!(g.max_degree() > 10);
    }

    #[test]
    fn ba_exact_edge_count() {
        let (n, m) = (100, 2);
        let g = barabasi_albert(n, m, &mut rng(5));
        assert_eq!(g.m(), m + (n - m - 1) * m);
    }

    #[test]
    fn planarish_thinner_than_full() {
        let g = random_planarish(200, 0.4, &mut rng(6));
        assert!(g.m() < 3 * 200 - 6);
        assert!(arboricity::degeneracy(&g) <= 3);
        let full = random_planarish(200, 0.0, &mut rng(6));
        assert_eq!(full.m(), 3 * 200 - 6);
    }
}
