//! Declarative graph-family specifications.
//!
//! Experiment harnesses describe workloads as data ([`GraphSpec`]) so runs
//! can be serialized, tabulated, and reproduced from a seed.

use crate::graph::Graph;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The named random/deterministic families used across experiments.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum GraphFamily {
    /// Path graph `P_n`.
    Path,
    /// Cycle graph `C_n`.
    Cycle,
    /// Uniformly random labelled tree (Prüfer).
    RandomTree,
    /// Caterpillar with pendant leaves per spine node; `n` is the total
    /// node count.
    Caterpillar {
        /// Pendant leaves per spine node.
        legs: usize,
    },
    /// Union of `alpha` random forests.
    ForestUnion {
        /// Number of forests (the arboricity certificate).
        alpha: usize,
    },
    /// Random `k`-tree.
    KTree {
        /// Treewidth parameter.
        k: usize,
    },
    /// Random Apollonian (planar) network.
    Apollonian,
    /// Barabási–Albert with attachment `m`.
    BarabasiAlbert {
        /// Edges added per new node.
        m: usize,
    },
    /// Erdős–Rényi with expected average degree `d`.
    GnpAvgDegree {
        /// Expected average degree.
        d: f64,
    },
    /// Square-ish grid (`rows = cols = ⌈√n⌉`, truncated to `n` is NOT done;
    /// the generated graph has `rows·cols` nodes).
    Grid,
    /// `d`-dimensional hypercube (`n` is rounded down to a power of two).
    Hypercube,
    /// Random series-parallel graph (treewidth ≤ 2).
    SeriesParallel,
    /// Ring of `k`-cliques (`n` is rounded to a multiple of `k`).
    RingOfCliques {
        /// Clique size.
        k: usize,
    },
    /// Random geometric (unit-disk) graph with the given radius.
    Geometric {
        /// Connection radius in the unit square.
        radius: f64,
    },
    /// Holme–Kim power-law cluster graph.
    PowerlawCluster {
        /// Attachment links per node.
        m: usize,
        /// Triad-closing probability.
        p: f64,
    },
}

impl GraphFamily {
    /// A short, stable identifier for tables.
    pub fn label(&self) -> String {
        match self {
            GraphFamily::Path => "path".into(),
            GraphFamily::Cycle => "cycle".into(),
            GraphFamily::RandomTree => "tree".into(),
            GraphFamily::Caterpillar { legs } => format!("caterpillar(l={legs})"),
            GraphFamily::ForestUnion { alpha } => format!("forests(α={alpha})"),
            GraphFamily::KTree { k } => format!("ktree(k={k})"),
            GraphFamily::Apollonian => "apollonian".into(),
            GraphFamily::BarabasiAlbert { m } => format!("ba(m={m})"),
            GraphFamily::GnpAvgDegree { d } => format!("gnp(d={d})"),
            GraphFamily::Grid => "grid".into(),
            GraphFamily::Hypercube => "hypercube".into(),
            GraphFamily::SeriesParallel => "series-parallel".into(),
            GraphFamily::RingOfCliques { k } => format!("cliquering(k={k})"),
            GraphFamily::Geometric { radius } => format!("geometric(r={radius})"),
            GraphFamily::PowerlawCluster { m, p } => format!("plc(m={m},p={p})"),
        }
    }

    /// A canonical, forward-stable key string for content-addressed
    /// caching. Unlike [`GraphFamily::label`] (a display string that may
    /// evolve), this encoding is frozen: every parameter appears as
    /// `name=value`, and floats are spelled as their IEEE-754 bit
    /// patterns so no formatting change can ever alias or split cache
    /// entries.
    pub fn stable_key(&self) -> String {
        fn f(x: f64) -> String {
            format!("f{:016x}", x.to_bits())
        }
        match self {
            GraphFamily::Path => "path".into(),
            GraphFamily::Cycle => "cycle".into(),
            GraphFamily::RandomTree => "randomtree".into(),
            GraphFamily::Caterpillar { legs } => format!("caterpillar;legs={legs}"),
            GraphFamily::ForestUnion { alpha } => format!("forestunion;alpha={alpha}"),
            GraphFamily::KTree { k } => format!("ktree;k={k}"),
            GraphFamily::Apollonian => "apollonian".into(),
            GraphFamily::BarabasiAlbert { m } => format!("ba;m={m}"),
            GraphFamily::GnpAvgDegree { d } => format!("gnp;d={}", f(*d)),
            GraphFamily::Grid => "grid".into(),
            GraphFamily::Hypercube => "hypercube".into(),
            GraphFamily::SeriesParallel => "seriesparallel".into(),
            GraphFamily::RingOfCliques { k } => format!("cliquering;k={k}"),
            GraphFamily::Geometric { radius } => format!("geometric;r={}", f(*radius)),
            GraphFamily::PowerlawCluster { m, p } => format!("plc;m={m};p={}", f(*p)),
        }
    }

    /// The arboricity bound this family guarantees by construction, if any.
    pub fn arboricity_bound(&self) -> Option<usize> {
        match self {
            GraphFamily::Path | GraphFamily::RandomTree | GraphFamily::Caterpillar { .. } => {
                Some(1)
            }
            GraphFamily::Cycle | GraphFamily::Grid => Some(2),
            GraphFamily::ForestUnion { alpha } => Some(*alpha),
            GraphFamily::KTree { k } => Some(*k),
            GraphFamily::Apollonian => Some(3),
            GraphFamily::BarabasiAlbert { m } => Some(*m),
            GraphFamily::SeriesParallel => Some(2),
            GraphFamily::RingOfCliques { k } => Some(k.div_ceil(2)),
            GraphFamily::PowerlawCluster { m, .. } => Some(2 * m),
            GraphFamily::GnpAvgDegree { .. }
            | GraphFamily::Hypercube
            | GraphFamily::Geometric { .. } => None,
        }
    }
}

impl fmt::Display for GraphFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A fully-specified workload: family + target size.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// The family to draw from.
    pub family: GraphFamily,
    /// Target number of nodes (exact for most families; see
    /// [`GraphFamily::Grid`] / [`GraphFamily::Hypercube`] caveats).
    pub n: usize,
}

impl GraphSpec {
    /// Creates a spec.
    pub fn new(family: GraphFamily, n: usize) -> Self {
        GraphSpec { family, n }
    }

    /// Canonical cache-key material for this spec: the frozen
    /// [`GraphFamily::stable_key`] plus the target size. Seed and salt
    /// are deliberately *not* part of the spec key — callers mix those
    /// in separately (see `arbmis-bench`'s cache layer).
    pub fn stable_key(&self) -> String {
        format!("{};n={}", self.family.stable_key(), self.n)
    }

    /// Instantiates the workload with the given RNG.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let n = self.n;
        match self.family {
            GraphFamily::Path => super::path(n),
            GraphFamily::Cycle => super::cycle(n),
            GraphFamily::RandomTree => super::random_tree_prufer(n, rng),
            GraphFamily::Caterpillar { legs } => {
                let spine = (n / (legs + 1)).max(1);
                super::caterpillar(spine, legs)
            }
            GraphFamily::ForestUnion { alpha } => super::forest_union(n, alpha, rng),
            GraphFamily::KTree { k } => super::random_ktree(n.max(k + 1), k, rng),
            GraphFamily::Apollonian => super::apollonian(n.max(3), rng),
            GraphFamily::BarabasiAlbert { m } => super::barabasi_albert(n.max(m + 1), m, rng),
            GraphFamily::GnpAvgDegree { d } => super::gnp_with_expected_degree(n, d, rng),
            GraphFamily::Grid => {
                let side = (n as f64).sqrt().ceil() as usize;
                super::grid(side, side)
            }
            GraphFamily::Hypercube => {
                let d = (n.max(2) as f64).log2().floor() as u32;
                super::hypercube(d)
            }
            GraphFamily::SeriesParallel => super::series_parallel(n.max(2), rng),
            GraphFamily::RingOfCliques { k } => super::ring_of_cliques((n / k).max(1), k),
            GraphFamily::Geometric { radius } => super::random_geometric(n, radius, rng),
            GraphFamily::PowerlawCluster { m, p } => {
                super::powerlaw_cluster(n.max(m + 1), m, p, rng)
            }
        }
    }
}

impl fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[n={}]", self.family, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn every_family_generates() {
        let families = [
            GraphFamily::Path,
            GraphFamily::Cycle,
            GraphFamily::RandomTree,
            GraphFamily::Caterpillar { legs: 3 },
            GraphFamily::ForestUnion { alpha: 2 },
            GraphFamily::KTree { k: 2 },
            GraphFamily::Apollonian,
            GraphFamily::BarabasiAlbert { m: 2 },
            GraphFamily::GnpAvgDegree { d: 4.0 },
            GraphFamily::Grid,
            GraphFamily::Hypercube,
            GraphFamily::SeriesParallel,
            GraphFamily::RingOfCliques { k: 4 },
            GraphFamily::Geometric { radius: 0.2 },
            GraphFamily::PowerlawCluster { m: 2, p: 0.5 },
        ];
        for fam in families {
            let g = GraphSpec::new(fam, 64).generate(&mut rng());
            assert!(g.n() >= 3, "{fam} generated tiny graph");
            assert!(!fam.label().is_empty());
        }
    }

    #[test]
    fn arboricity_bounds_hold_empirically() {
        use crate::arboricity::degeneracy;
        let bounded = [
            GraphFamily::RandomTree,
            GraphFamily::ForestUnion { alpha: 3 },
            GraphFamily::KTree { k: 3 },
            GraphFamily::Apollonian,
            GraphFamily::BarabasiAlbert { m: 3 },
        ];
        for fam in bounded {
            let bound = fam.arboricity_bound().unwrap();
            let g = GraphSpec::new(fam, 300).generate(&mut rng());
            // degeneracy ≤ 2α − 1 for arboricity α.
            assert!(
                degeneracy(&g) <= 2 * bound,
                "{fam}: degeneracy {} vs α bound {bound}",
                degeneracy(&g)
            );
        }
    }

    #[test]
    fn stable_keys_are_unique_and_pinned() {
        let specs = [
            GraphSpec::new(GraphFamily::Path, 64),
            GraphSpec::new(GraphFamily::Cycle, 64),
            GraphSpec::new(GraphFamily::RandomTree, 64),
            GraphSpec::new(GraphFamily::Caterpillar { legs: 3 }, 64),
            GraphSpec::new(GraphFamily::ForestUnion { alpha: 2 }, 64),
            GraphSpec::new(GraphFamily::ForestUnion { alpha: 3 }, 64),
            GraphSpec::new(GraphFamily::ForestUnion { alpha: 3 }, 65),
            GraphSpec::new(GraphFamily::KTree { k: 2 }, 64),
            GraphSpec::new(GraphFamily::Apollonian, 64),
            GraphSpec::new(GraphFamily::BarabasiAlbert { m: 2 }, 64),
            GraphSpec::new(GraphFamily::GnpAvgDegree { d: 4.0 }, 64),
            GraphSpec::new(GraphFamily::GnpAvgDegree { d: 4.5 }, 64),
            GraphSpec::new(GraphFamily::Grid, 64),
            GraphSpec::new(GraphFamily::Hypercube, 64),
            GraphSpec::new(GraphFamily::SeriesParallel, 64),
            GraphSpec::new(GraphFamily::RingOfCliques { k: 4 }, 64),
            GraphSpec::new(GraphFamily::Geometric { radius: 0.2 }, 64),
            GraphSpec::new(GraphFamily::PowerlawCluster { m: 2, p: 0.5 }, 64),
        ];
        let keys: Vec<String> = specs.iter().map(|s| s.stable_key()).collect();
        let unique: std::collections::BTreeSet<&String> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "stable keys must not collide");
        // The encoding is a frozen on-disk format: pin representative keys.
        assert_eq!(
            GraphSpec::new(GraphFamily::GnpAvgDegree { d: 4.0 }, 50_000).stable_key(),
            "gnp;d=f4010000000000000;n=50000"
        );
        assert_eq!(
            GraphSpec::new(GraphFamily::KTree { k: 3 }, 20_000).stable_key(),
            "ktree;k=3;n=20000"
        );
    }

    #[test]
    fn spec_display_roundtrip_serde() {
        let spec = GraphSpec::new(GraphFamily::KTree { k: 2 }, 128);
        let s = format!("{spec}");
        assert!(s.contains("ktree"));
    }
}
