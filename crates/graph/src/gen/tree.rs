//! Random trees and forests.

use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;
use rand::Rng;

/// Uniformly random labelled tree on `n` nodes via a random Prüfer
/// sequence. Each of the `n^{n-2}` labelled trees is equally likely.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = arbmis_graph::gen::random_tree_prufer(100, &mut rng);
/// assert_eq!(g.m(), 99);
/// assert!(arbmis_graph::traversal::is_forest(&g));
/// ```
pub fn random_tree_prufer<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]);
    }
    let seq: Vec<NodeId> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    decode_prufer(n, &seq)
}

/// Decodes a Prüfer sequence of length `n - 2` into its tree.
fn decode_prufer(n: usize, seq: &[NodeId]) -> Graph {
    debug_assert_eq!(seq.len(), n - 2);
    let mut remaining_degree = vec![1usize; n];
    for &x in seq {
        remaining_degree[x] += 1;
    }
    // Min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = (0..n)
        .filter(|&v| remaining_degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for &x in seq {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("prufer decode: no leaf available");
        b.add_edge(leaf, x);
        remaining_degree[x] -= 1;
        if remaining_degree[x] == 1 {
            leaves.push(std::cmp::Reverse(x));
        }
    }
    let std::cmp::Reverse(u) = leaves.pop().unwrap();
    let std::cmp::Reverse(v) = leaves.pop().unwrap();
    b.add_edge(u, v);
    b.build()
}

/// Random attachment tree: node `i` attaches to a uniformly random earlier
/// node. Produces shallower, broader trees than the Prüfer model.
pub fn random_tree_attachment<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        b.add_edge(i, parent);
    }
    b.build()
}

/// Random spanning forest on `n` nodes with roughly `edge_fraction` of the
/// `n - 1` tree edges kept (each kept independently). `edge_fraction` is
/// clamped to `[0, 1]`.
pub fn random_forest<R: Rng + ?Sized>(n: usize, edge_fraction: f64, rng: &mut R) -> Graph {
    let keep = edge_fraction.clamp(0.0, 1.0);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        if rng.gen_bool(keep) {
            let parent = rng.gen_range(0..i);
            b.add_edge(i, parent);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn prufer_is_tree() {
        for seed in 0..5 {
            let g = random_tree_prufer(50, &mut rng(seed));
            assert_eq!(g.m(), 49);
            assert!(traversal::is_connected(&g));
            assert!(traversal::is_forest(&g));
        }
    }

    #[test]
    fn prufer_small_sizes() {
        assert_eq!(random_tree_prufer(0, &mut rng(0)).n(), 0);
        assert_eq!(random_tree_prufer(1, &mut rng(0)).m(), 0);
        assert_eq!(random_tree_prufer(2, &mut rng(0)).m(), 1);
        let g3 = random_tree_prufer(3, &mut rng(0));
        assert_eq!(g3.m(), 2);
        assert!(traversal::is_forest(&g3));
    }

    #[test]
    fn prufer_decode_known_sequence() {
        // Prüfer sequence [3, 3, 3, 4] on 6 nodes: star-ish tree.
        let g = decode_prufer(6, &[3, 3, 3, 4]);
        assert_eq!(g.degree(3), 4);
        assert_eq!(g.degree(4), 2);
        assert!(traversal::is_forest(&g));
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn attachment_is_tree() {
        let g = random_tree_attachment(200, &mut rng(3));
        assert_eq!(g.m(), 199);
        assert!(traversal::is_connected(&g));
        assert!(traversal::is_forest(&g));
    }

    #[test]
    fn forest_is_forest() {
        let g = random_forest(300, 0.5, &mut rng(4));
        assert!(traversal::is_forest(&g));
        assert!(g.m() < 299);
        // fraction 1.0 yields a spanning tree
        let full = random_forest(50, 1.0, &mut rng(4));
        assert_eq!(full.m(), 49);
        // fraction 0.0 yields no edges
        assert_eq!(random_forest(50, 0.0, &mut rng(4)).m(), 0);
    }

    #[test]
    fn prufer_distribution_sanity() {
        // Over labelled trees on 3 nodes there are exactly 3 trees, each a
        // path with a distinct center. Check all centers occur.
        let mut seen = [false; 3];
        let mut r = rng(9);
        for _ in 0..200 {
            let g = random_tree_prufer(3, &mut r);
            let center = (0..3).find(|&v| g.degree(v) == 2).unwrap();
            seen[center] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
