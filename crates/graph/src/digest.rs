//! Stable content digests for cache keys.
//!
//! The experiment cache (crates/bench) addresses entries by a digest of
//! their generating parameters. `std::hash` is explicitly *not* stable
//! across Rust releases, so cache keys that must survive on disk between
//! toolchain upgrades use this hand-rolled FNV-1a 128 instead: the
//! algorithm is frozen (offset basis and prime from the FNV spec), the
//! arithmetic is plain `u128` wrapping ops, and the output depends only
//! on the input bytes.

/// FNV-1a 128-bit offset basis (per the FNV reference parameters).
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime: `2^88 + 2^8 + 0x3b`.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// An incremental FNV-1a 128 hasher.
///
/// Not a `std::hash::Hasher` on purpose — the std trait invites mixing
/// with unstable std hashing, and this type exists precisely to avoid
/// that.
#[derive(Clone, Copy, Debug)]
pub struct Fnv128 {
    state: u128,
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv128 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv128 {
            state: FNV128_OFFSET,
        }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
        self
    }

    /// Absorbs a string's UTF-8 bytes, then a NUL separator so that
    /// `("ab","c")` and `("a","bc")` digest differently.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes());
        self.write(&[0])
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The current 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.state
    }

    /// The digest as 32 lowercase hex characters (fixed width).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

/// One-shot FNV-1a 128 of a byte slice.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = Fnv128::new();
    h.write(bytes);
    h.finish()
}

/// One-shot 64-bit checksum (the low 64 bits of [`fnv128`]) — used as a
/// cheap integrity check on cached payloads.
pub fn checksum64(bytes: &[u8]) -> u64 {
    fnv128(bytes) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_offset_basis() {
        // FNV-1a of the empty string is the offset basis by definition.
        assert_eq!(fnv128(b""), FNV128_OFFSET);
        assert_eq!(Fnv128::new().hex(), "6c62272e07bb014262b821756295c58d");
    }

    #[test]
    fn digest_is_deterministic_and_discriminating() {
        assert_eq!(fnv128(b"gnp;d=4.0;n=50000"), fnv128(b"gnp;d=4.0;n=50000"));
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
        assert_ne!(fnv128(b"ab"), fnv128(b"ba"));
        assert_ne!(fnv128(b""), fnv128(b"\0"));
    }

    #[test]
    fn write_str_separates_fields() {
        let mut a = Fnv128::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv128::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_fixed_width() {
        let mut h = Fnv128::new();
        h.write_u64(12345);
        assert_eq!(h.hex().len(), 32);
        assert!(h.hex().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn checksum_tracks_low_bits() {
        let d = fnv128(b"payload");
        assert_eq!(checksum64(b"payload"), d as u64);
    }
}
