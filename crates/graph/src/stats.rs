//! Workload characterization: one-stop structural statistics.
//!
//! The experiment harness prints these for every generated workload so
//! tables are interpretable without re-deriving graph properties.

use crate::graph::{Graph, NodeId};
use crate::{arboricity, cores, traversal};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A structural summary of a graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Maximum degree Δ.
    pub max_degree: usize,
    /// Average degree.
    pub avg_degree: f64,
    /// Degeneracy (= max coreness).
    pub degeneracy: usize,
    /// Certified arboricity lower bound.
    pub arboricity_lower: usize,
    /// Certified arboricity upper bound.
    pub arboricity_upper: usize,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Number of triangles.
    pub triangles: u64,
    /// Global clustering coefficient (3·triangles / wedges), 0 if no
    /// wedges.
    pub clustering: f64,
}

impl GraphStats {
    /// Computes all statistics. `O(m^{3/2})` dominated by triangle
    /// counting.
    pub fn compute(g: &Graph) -> Self {
        let comps = traversal::connected_components(g);
        let bounds = arboricity::arboricity_bounds(g);
        let triangles = count_triangles(g);
        let wedges: u64 = g
            .nodes()
            .map(|v| {
                let d = g.degree(v) as u64;
                d * d.saturating_sub(1) / 2
            })
            .sum();
        GraphStats {
            n: g.n(),
            m: g.m(),
            max_degree: g.max_degree(),
            avg_degree: g.avg_degree(),
            degeneracy: cores::core_decomposition(g).degeneracy,
            arboricity_lower: bounds.lower,
            arboricity_upper: bounds.upper,
            components: comps.count(),
            largest_component: comps.max_size(),
            triangles,
            clustering: if wedges == 0 {
                0.0
            } else {
                3.0 * triangles as f64 / wedges as f64
            },
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} m={} Δ={} avg={:.2} degen={} α∈[{},{}] comps={} tri={} cc={:.3}",
            self.n,
            self.m,
            self.max_degree,
            self.avg_degree,
            self.degeneracy,
            self.arboricity_lower,
            self.arboricity_upper,
            self.components,
            self.triangles,
            self.clustering
        )
    }
}

/// Counts triangles by the forward (oriented wedge) method:
/// `O(m·degeneracy)` on sparse graphs.
pub fn count_triangles(g: &Graph) -> u64 {
    // Orient each edge from lower (degree, id) to higher; every triangle
    // has exactly one node with two out-edges to the other two.
    let rank = |v: NodeId| (g.degree(v), v);
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); g.n()];
    for (u, v) in g.edges() {
        if rank(u) < rank(v) {
            out[u].push(v);
        } else {
            out[v].push(u);
        }
    }
    let mut count = 0u64;
    let mut mark = vec![false; g.n()];
    for v in g.nodes() {
        for &w in &out[v] {
            mark[w] = true;
        }
        for &w in &out[v] {
            for &x in &out[w] {
                if mark[x] {
                    count += 1;
                }
            }
        }
        for &w in &out[v] {
            mark[w] = false;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    #[test]
    fn triangle_counts_on_known_graphs() {
        assert_eq!(count_triangles(&gen::complete(4)), 4);
        assert_eq!(count_triangles(&gen::complete(5)), 10);
        assert_eq!(count_triangles(&gen::cycle(5)), 0);
        assert_eq!(count_triangles(&gen::cycle(3)), 1);
        assert_eq!(count_triangles(&gen::path(10)), 0);
        assert_eq!(count_triangles(&gen::complete_bipartite(3, 3)), 0);
    }

    #[test]
    fn apollonian_triangle_density() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = gen::apollonian(50, &mut rng);
        // Each insertion adds exactly 3 triangles to the count ≥ n−3…
        // at minimum; just check positivity and clustering in (0,1].
        let stats = GraphStats::compute(&g);
        assert!(stats.triangles >= (50 - 3) as u64);
        assert!(stats.clustering > 0.0 && stats.clustering <= 1.0);
    }

    #[test]
    fn stats_fields_consistent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let g = gen::forest_union(200, 2, &mut rng);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 200);
        assert_eq!(s.m, g.m());
        assert!(s.arboricity_lower <= s.arboricity_upper);
        assert!(s.degeneracy <= 2 * 2);
    }

    #[test]
    fn forest_has_no_triangles_and_clustering_zero() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = gen::random_tree_prufer(100, &mut rng);
        let s = GraphStats::compute(&g);
        assert_eq!(s.triangles, 0);
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 100);
    }

    #[test]
    fn display_is_informative() {
        let s = GraphStats::compute(&gen::cycle(6));
        let txt = s.to_string();
        assert!(txt.contains("n=6"));
        assert!(txt.contains("Δ=2"));
    }

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::compute(&crate::Graph::empty(0));
        assert_eq!(s.n, 0);
        assert_eq!(s.clustering, 0.0);
    }
}
