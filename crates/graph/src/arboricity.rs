//! Arboricity and degeneracy estimates.
//!
//! By Nash–Williams, the arboricity of `G` is
//! `α(G) = max_H ⌈m_H / (n_H − 1)⌉` over subgraphs `H` with ≥ 2 nodes.
//! Computing it exactly needs matroid machinery; for the experiments we
//! need only *certified bounds*, which are cheap:
//!
//! * **Lower bound:** the density of the whole graph and of each k-core is
//!   a valid Nash–Williams witness; also `α ≥ ⌈(degeneracy + 1) / 2⌉`
//!   because a graph of arboricity α is (2α − 1)-degenerate.
//! * **Upper bound:** `α ≤ degeneracy`, because a d-degenerate graph's
//!   acyclic orientation with out-degree ≤ d splits the edges into d
//!   forests (see [`crate::forest`]).

use crate::graph::Graph;
use crate::orientation::degeneracy_ordering;

/// The degeneracy of `g`: the smallest `d` such that every subgraph has a
/// node of degree ≤ `d`. `O(n + m)`.
///
/// ```
/// let g = arbmis_graph::gen::cycle(8);
/// assert_eq!(arbmis_graph::arboricity::degeneracy(&g), 2);
/// ```
pub fn degeneracy(g: &Graph) -> usize {
    degeneracy_ordering(g).degeneracy
}

/// Certified lower and upper bounds on the arboricity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArboricityBounds {
    /// A value `≤ α(G)`.
    pub lower: usize,
    /// A value `≥ α(G)` (the degeneracy).
    pub upper: usize,
}

impl ArboricityBounds {
    /// `true` when the bounds meet, pinning the arboricity exactly.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }
}

/// Computes [`ArboricityBounds`] for `g`.
///
/// The lower bound maximizes the Nash–Williams density over the whole
/// graph and every core prefix of the degeneracy ordering; it also folds in
/// `⌈(degeneracy + 1) / 2⌉`.
pub fn arboricity_bounds(g: &Graph) -> ArboricityBounds {
    let ord = degeneracy_ordering(g);
    let upper = ord.degeneracy;
    if g.n() < 2 || g.m() == 0 {
        return ArboricityBounds {
            lower: usize::from(g.m() > 0),
            upper,
        };
    }
    // Density over suffixes of the degeneracy ordering (the "cores"):
    // scanning the ordering backwards, the suffix starting at position i is
    // the subgraph remaining when node order[i] was deleted. Count edges
    // internal to each suffix incrementally.
    let n = g.n();
    let mut lower = 1usize;
    let mut in_suffix = vec![false; n];
    let mut nodes = 0usize;
    let mut edges = 0usize;
    for i in (0..n).rev() {
        let v = ord.order[i];
        edges += g.neighbors(v).iter().filter(|&&u| in_suffix[u]).count();
        in_suffix[v] = true;
        nodes += 1;
        if nodes >= 2 {
            let dens = edges.div_ceil(nodes - 1);
            lower = lower.max(dens);
        }
    }
    lower = lower.max((ord.degeneracy + 1).div_ceil(2));
    ArboricityBounds {
        lower,
        upper: upper.max(lower),
    }
}

/// Convenience: the Nash–Williams density `⌈m / (n − 1)⌉` of the whole
/// graph (0 when `n < 2`).
pub fn density_lower_bound(g: &Graph) -> usize {
    if g.n() < 2 {
        0
    } else {
        g.m().div_ceil(g.n() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn tree_arboricity_exact_one() {
        let g = gen::random_tree_prufer(200, &mut rng(1));
        let b = arboricity_bounds(&g);
        assert_eq!(b.lower, 1);
        assert_eq!(b.upper, 1);
        assert!(b.is_exact());
    }

    #[test]
    fn cycle_arboricity_exact_two() {
        // A cycle has arboricity 2 (one forest can't hold all n edges).
        let b = arboricity_bounds(&gen::cycle(10));
        assert_eq!(b.lower, 2);
        assert_eq!(b.upper, 2);
    }

    #[test]
    fn complete_graph_bounds() {
        // α(K_n) = ⌈n/2⌉; degeneracy = n−1.
        let b = arboricity_bounds(&gen::complete(8));
        assert_eq!(b.lower, 4); // 28 edges / 7 = 4
        assert_eq!(b.upper, 7);
        assert!(!b.is_exact());
    }

    #[test]
    fn ktree_bounds_sandwich() {
        for k in 2..=4 {
            let g = gen::random_ktree(150, k, &mut rng(k as u64));
            let b = arboricity_bounds(&g);
            assert!(b.lower >= k.div_ceil(2));
            assert_eq!(b.upper, k);
            assert!(b.lower <= b.upper);
        }
    }

    #[test]
    fn apollonian_bounds() {
        let g = gen::apollonian(200, &mut rng(3));
        let b = arboricity_bounds(&g);
        // maximal planar: m = 3n−6, density ⌈(3n−6)/(n−1)⌉ = 3 for n ≥ 4.
        assert_eq!(b.lower, 3);
        assert_eq!(b.upper, 3);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(degeneracy(&Graph::empty(0)), 0);
        let b = arboricity_bounds(&Graph::empty(5));
        assert_eq!(b.lower, 0);
        assert_eq!(b.upper, 0);
        let single_edge = Graph::from_edges(2, &[(0, 1)]);
        let b = arboricity_bounds(&single_edge);
        assert_eq!((b.lower, b.upper), (1, 1));
    }

    #[test]
    fn density_helper() {
        assert_eq!(density_lower_bound(&gen::complete(5)), 3); // 10/4 -> 3
        assert_eq!(density_lower_bound(&Graph::empty(1)), 0);
    }

    use crate::graph::Graph;
}
