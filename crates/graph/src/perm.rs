//! Cache-aware node orderings: permutations over the CSR layout.
//!
//! A [`Permutation`] relabels the nodes of a [`Graph`] so that an engine
//! can sweep them in a memory-friendly order (hubs first, or
//! BFS-clustered components) while the *semantics* stay keyed by the
//! original ids. The contract consumers rely on (DESIGN.md §13): the
//! permutation is an execution-layout detail — coin draws, tie-breaks,
//! and reported joiner sets are all in original-id space, so a permuted
//! run is byte-identical to the unpermuted one.
//!
//! All constructors are deterministic pure functions of the graph: no
//! RNG, no hash-map iteration order, so the same graph always yields the
//! same layout on every host.

use crate::{Graph, NodeId};

/// A bijection between original node ids and layout positions.
///
/// `to_new[old] = pos` and `to_old[pos] = old`; both directions are
/// materialized because the hot loops need `old(pos)` per scanned node
/// (coin keying) while edits and probes need `new(old)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    to_new: Vec<NodeId>,
    to_old: Vec<NodeId>,
}

impl Permutation {
    /// The identity permutation on `n` nodes.
    pub fn identity(n: usize) -> Self {
        Permutation {
            to_new: (0..n).collect(),
            to_old: (0..n).collect(),
        }
    }

    /// Builds a permutation from its position → original-id table.
    ///
    /// # Panics
    ///
    /// Panics if `to_old` is not a permutation of `0..to_old.len()`.
    pub fn from_to_old(to_old: Vec<NodeId>) -> Self {
        let n = to_old.len();
        let mut to_new = vec![usize::MAX; n];
        for (pos, &old) in to_old.iter().enumerate() {
            assert!(old < n, "permutation entry {old} out of range for n={n}");
            assert!(
                to_new[old] == usize::MAX,
                "duplicate permutation entry {old}"
            );
            to_new[old] = pos;
        }
        Permutation { to_new, to_old }
    }

    /// Degree-descending order: hubs first (stable — ties break on
    /// ascending original id). High-degree nodes are probed by the most
    /// neighbors, so packing them into a compact id prefix keeps their
    /// flags on the same few cache lines.
    pub fn by_degree(g: &Graph) -> Self {
        let mut to_old: Vec<NodeId> = (0..g.n()).collect();
        to_old.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        Permutation::from_to_old(to_old)
    }

    /// BFS order: components in ascending order of their lowest original
    /// id, each traversed breadth-first from that root with neighbors
    /// visited in ascending original id. Neighbors end up within a
    /// BFS-level width of each other in the new layout.
    pub fn by_bfs(g: &Graph) -> Self {
        let n = g.n();
        let mut to_old = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for root in 0..n {
            if seen[root] {
                continue;
            }
            seen[root] = true;
            queue.push_back(root);
            while let Some(v) = queue.pop_front() {
                to_old.push(v);
                for &u in g.neighbors(v) {
                    if !seen[u] {
                        seen[u] = true;
                        queue.push_back(u);
                    }
                }
            }
        }
        Permutation::from_to_old(to_old)
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.to_old.len()
    }

    /// Layout position of original node `old`.
    #[inline]
    pub fn new_of(&self, old: NodeId) -> NodeId {
        self.to_new[old]
    }

    /// Original id at layout position `pos`.
    #[inline]
    pub fn old_of(&self, pos: NodeId) -> NodeId {
        self.to_old[pos]
    }

    /// The position → original-id table.
    #[inline]
    pub fn to_old(&self) -> &[NodeId] {
        &self.to_old
    }

    /// The original-id → position table.
    #[inline]
    pub fn to_new(&self) -> &[NodeId] {
        &self.to_new
    }

    /// Whether this is the identity (layout == original ids).
    pub fn is_identity(&self) -> bool {
        self.to_old.iter().enumerate().all(|(pos, &old)| pos == old)
    }
}

/// Which [`Permutation`] an engine lays its scan out in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NodeOrder {
    /// Original ids (no relabeling).
    #[default]
    Identity,
    /// [`Permutation::by_degree`]: hubs first.
    Degree,
    /// [`Permutation::by_bfs`]: BFS-clustered components.
    Bfs,
}

impl NodeOrder {
    /// Stable lowercase label for CLIs, artifacts, and logs.
    pub fn label(&self) -> &'static str {
        match self {
            NodeOrder::Identity => "identity",
            NodeOrder::Degree => "degree",
            NodeOrder::Bfs => "bfs",
        }
    }

    /// Parses a [`label`](NodeOrder::label).
    ///
    /// # Errors
    ///
    /// The unrecognized input, for the caller's error message.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "identity" => Ok(NodeOrder::Identity),
            "degree" => Ok(NodeOrder::Degree),
            "bfs" => Ok(NodeOrder::Bfs),
            other => Err(format!(
                "unknown node order {other:?} (expected identity, degree, or bfs)"
            )),
        }
    }

    /// Builds this order's permutation for `g`.
    pub fn permutation(&self, g: &Graph) -> Permutation {
        match self {
            NodeOrder::Identity => Permutation::identity(g.n()),
            NodeOrder::Degree => Permutation::by_degree(g),
            NodeOrder::Bfs => Permutation::by_bfs(g),
        }
    }
}

impl Graph {
    /// The graph relabeled into `perm`'s layout: position `p` of the
    /// result is original node `perm.old_of(p)`, with neighbor lists
    /// re-sorted by position.
    ///
    /// # Panics
    ///
    /// Panics if `perm.n() != self.n()`.
    pub fn relabel(&self, perm: &Permutation) -> Graph {
        assert_eq!(perm.n(), self.n(), "permutation size mismatch");
        let n = self.n();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut adj = Vec::with_capacity(2 * self.m());
        for pos in 0..n {
            let old = perm.old_of(pos);
            let start = adj.len();
            adj.extend(self.neighbors(old).iter().map(|&u| perm.new_of(u)));
            adj[start..].sort_unstable();
            offsets.push(adj.len());
        }
        Graph::from_csr_unchecked(offsets, adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        for v in 0..5 {
            assert_eq!(p.new_of(v), v);
            assert_eq!(p.old_of(v), v);
        }
        assert_eq!(p.n(), 5);
    }

    #[test]
    fn inverse_composition_is_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::gnp(300, 0.02, &mut rng);
        for p in [
            Permutation::identity(g.n()),
            Permutation::by_degree(&g),
            Permutation::by_bfs(&g),
        ] {
            for v in 0..g.n() {
                assert_eq!(p.new_of(p.old_of(v)), v);
                assert_eq!(p.old_of(p.new_of(v)), v);
            }
        }
    }

    #[test]
    fn degree_order_is_descending_and_stable() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = gen::barabasi_albert(200, 3, &mut rng);
        let p = Permutation::by_degree(&g);
        let degs: Vec<usize> = p.to_old().iter().map(|&v| g.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "hubs first");
        for w in p.to_old().windows(2) {
            if g.degree(w[0]) == g.degree(w[1]) {
                assert!(w[0] < w[1], "ties must keep ascending original id");
            }
        }
    }

    #[test]
    fn bfs_order_visits_components_in_root_order() {
        // Two components: a path 0-1-2 and an edge 3-4, plus isolated 5.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let p = Permutation::by_bfs(&g);
        assert_eq!(p.to_old(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn relabel_preserves_structure() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = gen::random_ktree(120, 3, &mut rng);
        for p in [Permutation::by_degree(&g), Permutation::by_bfs(&g)] {
            let h = g.relabel(&p);
            assert_eq!(h.n(), g.n());
            assert_eq!(h.m(), g.m());
            for pos in 0..h.n() {
                let old = p.old_of(pos);
                assert_eq!(h.degree(pos), g.degree(old), "degree at pos {pos}");
                let mut back: Vec<NodeId> = h.neighbors(pos).iter().map(|&q| p.old_of(q)).collect();
                back.sort_unstable();
                assert_eq!(back, g.neighbors(old), "adjacency at pos {pos}");
            }
        }
    }

    #[test]
    fn relabel_under_identity_is_the_same_graph() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = gen::gnp(80, 0.05, &mut rng);
        let h = g.relabel(&Permutation::identity(g.n()));
        assert_eq!(h, g);
    }

    #[test]
    #[should_panic]
    fn non_permutation_rejected() {
        let _ = Permutation::from_to_old(vec![0, 0, 2]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_rejected() {
        let _ = Permutation::from_to_old(vec![0, 3]);
    }

    #[test]
    fn node_order_labels_roundtrip() {
        for o in [NodeOrder::Identity, NodeOrder::Degree, NodeOrder::Bfs] {
            assert_eq!(NodeOrder::parse(o.label()).unwrap(), o);
        }
        assert!(NodeOrder::parse("zorder").is_err());
        assert_eq!(NodeOrder::default(), NodeOrder::Identity);
        let g = gen::path(4);
        assert!(NodeOrder::Identity.permutation(&g).is_identity());
        assert!(!NodeOrder::Bfs
            .permutation(&gen::star(5))
            .to_old()
            .is_empty());
    }

    #[test]
    fn empty_graph_permutations() {
        let g = Graph::empty(0);
        for o in [NodeOrder::Identity, NodeOrder::Degree, NodeOrder::Bfs] {
            let p = o.permutation(&g);
            assert_eq!(p.n(), 0);
            assert!(p.is_identity());
            assert_eq!(g.relabel(&p).n(), 0);
        }
    }
}
