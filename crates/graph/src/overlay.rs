//! A mutable adjacency overlay over an immutable CSR [`Graph`].
//!
//! The static pipeline consumes CSR graphs, but a live service sees the
//! graph as a *stream* of edge/node inserts and deletes. [`OverlayGraph`]
//! keeps an immutable CSR base plus per-node sorted delta lists (`added`
//! neighbors not in the base, `removed` base neighbors) and an `alive`
//! mask for node churn, so every update is `O(log deg)` and adjacency
//! queries see the mutated graph without ever rebuilding the CSR.
//!
//! Node ids are **stable**: inserting a node appends id `n`, removing a
//! node marks it dead (its slot is never reused), and
//! [`compact`](OverlayGraph::compact) folds the deltas back into a fresh
//! CSR base *without renumbering* — dead nodes simply become isolated in
//! the new base. That stability is what lets an incremental MIS layer
//! keep per-node state (membership masks, scratch tables) across
//! arbitrarily long update streams.
//!
//! Compaction is deterministic: it is a pure function of the update
//! sequence (no clocks, no allocator addresses), so two replicas applying
//! the same updates hold byte-identical structures at every step.

use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;

/// A CSR base graph plus sorted delta lists and an alive mask.
///
/// # Example
///
/// ```
/// use arbmis_graph::{gen, OverlayGraph};
///
/// let mut g = OverlayGraph::new(gen::path(4)); // 0-1-2-3
/// assert!(g.insert_edge(0, 3));
/// assert!(g.remove_edge(1, 2));
/// let v = g.insert_node(&[2]);
/// assert_eq!(v, 4);
/// assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1, 3]);
/// assert_eq!(g.degree(2), 2); // 3 and the new node
/// g.remove_node(1);
/// assert_eq!(g.degree(0), 1);
/// ```
#[derive(Clone, Debug)]
pub struct OverlayGraph {
    /// Immutable CSR snapshot; adjacency truth is `base − removed + added`.
    base: Graph,
    /// Per-node sorted neighbor ids present in the overlay but not the
    /// base. For nodes `>= base.n()` this is the entire adjacency.
    added: Vec<Vec<NodeId>>,
    /// Per-node sorted base-neighbor ids deleted by the overlay. Only
    /// ever references edges present in `base`.
    removed: Vec<Vec<NodeId>>,
    /// `alive[v]` — dead nodes have no incident edges and reject updates.
    alive: Vec<bool>,
    /// Incrementally-maintained degree (live edges only).
    deg: Vec<usize>,
    /// Live undirected edge count.
    m: usize,
    /// Live node count (`alive.iter().filter(|a| **a).count()`).
    alive_count: usize,
    /// Directed delta-entry count (`Σ added[v].len() + removed[v].len()`)
    /// — the compaction trigger's input.
    delta_entries: usize,
}

impl OverlayGraph {
    /// Wraps `base` with an empty overlay (every node alive).
    pub fn new(base: Graph) -> Self {
        let n = base.n();
        OverlayGraph {
            deg: (0..n).map(|v| base.degree(v)).collect(),
            m: base.m(),
            alive_count: n,
            added: vec![Vec::new(); n],
            removed: vec![Vec::new(); n],
            alive: vec![true; n],
            delta_entries: 0,
            base,
        }
    }

    /// Total node slots, dead ones included (ids are `0..n`).
    #[inline]
    pub fn n(&self) -> usize {
        self.alive.len()
    }

    /// Number of alive nodes.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Number of live undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Whether node `v` is alive.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    #[inline]
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive[v]
    }

    /// Live degree of `v` (0 for dead nodes).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.deg[v]
    }

    /// Directed delta entries currently held (0 right after
    /// [`compact`](Self::compact)); the compaction-policy input.
    #[inline]
    pub fn delta_entries(&self) -> usize {
        self.delta_entries
    }

    /// Undirected edge count of the CSR base snapshot.
    #[inline]
    pub fn base_m(&self) -> usize {
        self.base.m()
    }

    /// Whether the live edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if self.added[u].binary_search(&v).is_ok() {
            return true;
        }
        u < self.base.n()
            && v < self.base.n()
            && self.base.has_edge(u, v)
            && self.removed[u].binary_search(&v).is_err()
    }

    /// Iterates the live neighbors of `v` in ascending order
    /// (base minus removed, merged with added).
    pub fn neighbors(&self, v: NodeId) -> OverlayNeighbors<'_> {
        let base = if v < self.base.n() {
            self.base.neighbors(v)
        } else {
            &[]
        };
        OverlayNeighbors {
            base,
            removed: &self.removed[v],
            added: &self.added[v],
            bi: 0,
            ai: 0,
        }
    }

    /// Inserts the undirected edge `{u, v}`; returns whether the graph
    /// changed (`false` if the edge already existed).
    ///
    /// # Panics
    ///
    /// Panics on self loops, out-of-range ids, or dead endpoints.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(u != v, "self loop on node {u} rejected");
        assert!(
            self.alive[u] && self.alive[v],
            "edge ({u},{v}) touches a dead node"
        );
        if self.has_edge(u, v) {
            return false;
        }
        self.half_insert(u, v);
        self.half_insert(v, u);
        self.deg[u] += 1;
        self.deg[v] += 1;
        self.m += 1;
        true
    }

    /// Removes the undirected edge `{u, v}`; returns whether the graph
    /// changed (`false` if the edge was absent).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or dead endpoints.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            self.alive[u] && self.alive[v],
            "edge ({u},{v}) touches a dead node"
        );
        if u == v || !self.has_edge(u, v) {
            return false;
        }
        self.half_remove(u, v);
        self.half_remove(v, u);
        self.deg[u] -= 1;
        self.deg[v] -= 1;
        self.m -= 1;
        true
    }

    /// Appends a new alive node wired to `neighbors` (duplicates merged)
    /// and returns its id, which is always the previous [`n`](Self::n).
    ///
    /// # Panics
    ///
    /// Panics if a listed neighbor is out of range or dead.
    pub fn insert_node(&mut self, neighbors: &[NodeId]) -> NodeId {
        let v = self.n();
        self.added.push(Vec::new());
        self.removed.push(Vec::new());
        self.alive.push(true);
        self.deg.push(0);
        self.alive_count += 1;
        for &u in neighbors {
            assert!(u < v, "neighbor {u} out of range for new node {v}");
            self.insert_edge(v, u);
        }
        v
    }

    /// Removes node `v`: deletes all its incident edges, then marks it
    /// dead. Its id is never reused; updates touching it panic.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or already dead.
    pub fn remove_node(&mut self, v: NodeId) {
        assert!(self.alive[v], "node {v} is already dead");
        let nbrs: Vec<NodeId> = self.neighbors(v).collect();
        for u in nbrs {
            self.remove_edge(v, u);
        }
        self.alive[v] = false;
        self.alive_count -= 1;
    }

    /// Folds the deltas into a fresh CSR base (node ids unchanged, dead
    /// nodes isolated) and clears the overlay. Deterministic: the new
    /// base depends only on the live edge set.
    pub fn compact(&mut self) {
        let n = self.n();
        let mut b = GraphBuilder::with_capacity(n, self.m);
        for v in 0..n {
            for u in self.neighbors(v) {
                if u > v {
                    b.add_edge(v, u);
                }
            }
        }
        self.base = b.build();
        for v in 0..n {
            self.added[v].clear();
            self.removed[v].clear();
        }
        self.delta_entries = 0;
        debug_assert_eq!(self.base.m(), self.m);
    }

    /// Materializes the live structure as a standalone CSR [`Graph`] on
    /// the same ids (dead nodes isolated), leaving the overlay untouched.
    pub fn to_graph(&self) -> Graph {
        let n = self.n();
        let mut b = GraphBuilder::with_capacity(n, self.m);
        for v in 0..n {
            for u in self.neighbors(v) {
                if u > v {
                    b.add_edge(v, u);
                }
            }
        }
        b.build()
    }

    /// Snapshot of the alive mask.
    pub fn alive_mask(&self) -> &[bool] {
        &self.alive
    }

    /// One directed insertion half: undelete from `removed` if the base
    /// has the edge, else record in `added`.
    fn half_insert(&mut self, u: NodeId, v: NodeId) {
        if u < self.base.n() && v < self.base.n() && self.base.has_edge(u, v) {
            let i = self.removed[u]
                .binary_search(&v)
                .expect("absent base edge must be in removed");
            self.removed[u].remove(i);
            self.delta_entries -= 1;
        } else {
            let i = self.added[u]
                .binary_search(&v)
                .expect_err("edge absence checked by caller");
            self.added[u].insert(i, v);
            self.delta_entries += 1;
        }
    }

    /// One directed removal half: drop from `added` if overlay-only, else
    /// record the base edge in `removed`.
    fn half_remove(&mut self, u: NodeId, v: NodeId) {
        if let Ok(i) = self.added[u].binary_search(&v) {
            self.added[u].remove(i);
            self.delta_entries -= 1;
        } else {
            let i = self.removed[u]
                .binary_search(&v)
                .expect_err("present base edge cannot already be removed");
            self.removed[u].insert(i, v);
            self.delta_entries += 1;
        }
    }
}

/// Ascending merge of `(base − removed) ∪ added` for one node. Created
/// by [`OverlayGraph::neighbors`].
#[derive(Clone, Debug)]
pub struct OverlayNeighbors<'a> {
    base: &'a [NodeId],
    removed: &'a [NodeId],
    added: &'a [NodeId],
    bi: usize,
    ai: usize,
}

impl Iterator for OverlayNeighbors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let b = self.base.get(self.bi).copied();
            let a = self.added.get(self.ai).copied();
            match (b, a) {
                (Some(bv), av) if av.is_none_or(|av| bv < av) => {
                    self.bi += 1;
                    // `removed` is sorted like `base`; membership test is
                    // a binary search over the (short) removal list.
                    if self.removed.binary_search(&bv).is_err() {
                        return Some(bv);
                    }
                }
                (_, Some(av)) => {
                    self.ai += 1;
                    return Some(av);
                }
                (Some(_) | None, None) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::collections::BTreeSet;

    #[test]
    fn insert_and_remove_edges() {
        let mut g = OverlayGraph::new(gen::path(4)); // 0-1, 1-2, 2-3
        assert!(g.insert_edge(0, 2));
        assert!(!g.insert_edge(2, 0), "duplicate insert is a no-op");
        assert!(g.has_edge(0, 2));
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(2), 3);
        assert!(g.remove_edge(1, 2));
        assert!(!g.remove_edge(1, 2), "double remove is a no-op");
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.m(), 3);
        assert_eq!(g.neighbors(2).collect::<Vec<_>>(), vec![0, 3]);
        // Re-inserting a removed base edge undeletes it.
        assert!(g.insert_edge(1, 2));
        assert_eq!(g.delta_entries(), 2); // only the overlay edge {0,2}
    }

    #[test]
    fn node_churn() {
        let mut g = OverlayGraph::new(gen::cycle(4));
        let v = g.insert_node(&[0, 2]);
        assert_eq!(v, 4);
        assert_eq!(g.degree(v), 2);
        assert_eq!(g.alive_count(), 5);
        g.remove_node(0);
        assert!(!g.is_alive(0));
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(v), 1);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![2]);
        assert_eq!(g.alive_count(), 4);
        // The dead slot stays: new nodes append after it.
        assert_eq!(g.insert_node(&[]), 5);
    }

    #[test]
    #[should_panic]
    fn dead_node_rejects_updates() {
        let mut g = OverlayGraph::new(gen::path(3));
        g.remove_node(1);
        g.insert_edge(0, 1);
    }

    #[test]
    fn compact_preserves_structure_and_ids() {
        let mut g = OverlayGraph::new(gen::path(5));
        g.insert_edge(0, 4);
        g.remove_edge(1, 2);
        g.remove_node(3);
        let before = g.to_graph();
        let (n, m) = (g.n(), g.m());
        g.compact();
        assert_eq!(g.delta_entries(), 0);
        assert_eq!((g.n(), g.m()), (n, m));
        assert_eq!(g.to_graph(), before, "compaction must not change edges");
        assert!(!g.is_alive(3), "alive mask survives compaction");
        // Post-compaction updates work against the new base.
        assert!(g.remove_edge(0, 4));
        assert!(g.insert_edge(1, 2));
    }

    /// Randomized differential: overlay adjacency must always equal a
    /// naively-maintained edge set.
    #[test]
    fn matches_naive_edge_set_under_random_churn() {
        let mut rng = StdRng::seed_from_u64(42);
        let base = gen::gnp(30, 0.1, &mut rng);
        let mut g = OverlayGraph::new(base.clone());
        let mut naive: BTreeSet<(usize, usize)> = base.edges().collect();
        let mut alive: Vec<bool> = vec![true; 30];
        for step in 0..600 {
            let op = rng.gen_range(0u32..100);
            let n = g.n();
            if op < 40 {
                let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if u != v && alive[u] && alive[v] {
                    let key = (u.min(v), u.max(v));
                    assert_eq!(g.insert_edge(u, v), naive.insert(key), "step {step}");
                }
            } else if op < 80 {
                let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if u != v && alive[u] && alive[v] {
                    let key = (u.min(v), u.max(v));
                    assert_eq!(g.remove_edge(u, v), naive.remove(&key), "step {step}");
                }
            } else if op < 90 {
                let nbrs: Vec<usize> = (0..n).filter(|&u| alive[u] && rng.gen_bool(0.1)).collect();
                let v = g.insert_node(&nbrs);
                alive.push(true);
                for &u in &nbrs {
                    naive.insert((u, v));
                }
            } else if op < 95 {
                let v = rng.gen_range(0..n);
                if alive[v] {
                    g.remove_node(v);
                    alive[v] = false;
                    naive.retain(|&(a, b)| a != v && b != v);
                }
            } else {
                g.compact();
            }
            assert_eq!(g.m(), naive.len(), "step {step}");
            for v in 0..g.n() {
                let got: Vec<usize> = g.neighbors(v).collect();
                let want: Vec<usize> = naive
                    .iter()
                    .filter_map(|&(a, b)| (a == v).then_some(b).or((b == v).then_some(a)))
                    .collect();
                assert_eq!(got, want, "step {step} node {v}");
                assert_eq!(g.degree(v), want.len(), "step {step} node {v} degree");
            }
        }
    }

    #[test]
    fn neighbors_of_fresh_node_beyond_base() {
        let mut g = OverlayGraph::new(Graph::empty(2));
        let v = g.insert_node(&[0, 1]);
        assert_eq!(g.neighbors(v).collect::<Vec<_>>(), vec![0, 1]);
        assert!(g.has_edge(v, 0));
        assert!(!g.has_edge(0, 1));
    }
}
