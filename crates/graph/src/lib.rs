#![warn(missing_docs)]
//! Graph substrate for the `arbmis` workspace.
//!
//! This crate provides everything the distributed-MIS algorithms and their
//! analysis need from graphs:
//!
//! * [`Graph`] — a compact, immutable CSR (compressed sparse row)
//!   representation of a simple undirected graph, together with
//!   [`GraphBuilder`] for incremental construction.
//! * [`gen`] — workload generators: trees, Erdős–Rényi, grids, unions of
//!   random forests (arboricity ≤ α by construction), random k-trees,
//!   Apollonian (planar) networks, preferential attachment, and more.
//! * [`orientation`] — degeneracy orderings and acyclic low-out-degree
//!   orientations; the Parent/Child structure the paper's analysis fixes on
//!   an arboricity-α graph.
//! * [`arboricity`] — degeneracy and arboricity bounds (Nash–Williams
//!   density lower bound, degeneracy upper bound).
//! * [`forest`] — static forest decompositions derived from acyclic
//!   orientations.
//! * [`traversal`] — BFS, connected components, distance computations.
//! * [`powerband`] — the `G^[a,b]` band-power graphs used in the paper's
//!   Lemma 3.7 (shattering) analysis.
//! * [`subgraph`] — induced subgraphs and the mutable *active-set view*
//!   that shattering algorithms operate on.
//! * [`overlay`] — a mutable adjacency overlay over the CSR (delta lists
//!   + deterministic compaction) for edge/node churn streams.
//!
//! # Example
//!
//! ```
//! use arbmis_graph::{Graph, gen, orientation::Orientation};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // A union of 3 random spanning forests has arboricity at most 3.
//! let g = gen::forest_union(1_000, 3, &mut rng);
//! let o = Orientation::by_degeneracy(&g);
//! assert!(o.max_out_degree() <= 2 * 3); // degeneracy ≤ 2α − 1 < 2α
//! ```

pub mod arboricity;
pub mod builder;
pub mod cores;
pub mod digest;
pub mod forest;
pub mod gen;
pub mod graph;
pub mod io;
pub mod orientation;
pub mod overlay;
pub mod perm;
pub mod powerband;
pub mod props;
pub mod stats;
pub mod subgraph;
pub mod traversal;

pub use builder::GraphBuilder;
pub use graph::{Graph, NodeId};
pub use overlay::OverlayGraph;
pub use perm::{NodeOrder, Permutation};
pub use subgraph::{ActiveView, InducedSubgraph, ScratchSubgraph, SubgraphScratch};
