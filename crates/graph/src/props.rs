//! Structural well-formedness checks for [`Graph`] values.
//!
//! These are used by debug assertions inside the crate and by property
//! tests; they re-verify every invariant the CSR representation promises.

use crate::graph::{Graph, NodeId};
use std::fmt;

/// A violation of a [`Graph`] structural invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WellFormedError {
    /// `offsets` is not monotone nondecreasing, or endpoints are wrong.
    BadOffsets,
    /// A neighbor id is out of range.
    NeighborOutOfRange {
        /// Owner of the bad adjacency entry.
        node: NodeId,
        /// The out-of-range id listed.
        neighbor: NodeId,
    },
    /// A node lists itself.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// A neighbor list is not strictly sorted (unsorted or duplicate).
    UnsortedAdjacency {
        /// The node whose list is malformed.
        node: NodeId,
    },
    /// Edge `{u, v}` present in one direction only.
    Asymmetric {
        /// Endpoint listing the edge.
        u: NodeId,
        /// Endpoint missing the edge.
        v: NodeId,
    },
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::BadOffsets => write!(f, "offsets array is malformed"),
            WellFormedError::NeighborOutOfRange { node, neighbor } => {
                write!(f, "node {node} lists out-of-range neighbor {neighbor}")
            }
            WellFormedError::SelfLoop { node } => write!(f, "node {node} lists itself"),
            WellFormedError::UnsortedAdjacency { node } => {
                write!(f, "adjacency of node {node} is not strictly sorted")
            }
            WellFormedError::Asymmetric { u, v } => {
                write!(f, "edge ({u},{v}) present in one direction only")
            }
        }
    }
}

impl std::error::Error for WellFormedError {}

/// Verifies every structural invariant of `g`. `O(n + m log Δ)`.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_well_formed(g: &Graph) -> Result<(), WellFormedError> {
    let (offsets, adj) = g.as_csr();
    if offsets.is_empty() || offsets[0] != 0 || *offsets.last().unwrap() != adj.len() {
        return Err(WellFormedError::BadOffsets);
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(WellFormedError::BadOffsets);
    }
    let n = g.n();
    for u in 0..n {
        let nbrs = g.neighbors(u);
        for w in nbrs.windows(2) {
            if w[0] >= w[1] {
                return Err(WellFormedError::UnsortedAdjacency { node: u });
            }
        }
        for &v in nbrs {
            if v >= n {
                return Err(WellFormedError::NeighborOutOfRange {
                    node: u,
                    neighbor: v,
                });
            }
            if v == u {
                return Err(WellFormedError::SelfLoop { node: u });
            }
            if !g.has_edge(v, u) {
                return Err(WellFormedError::Asymmetric { u, v });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn valid_graph_passes() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(check_well_formed(&g).is_ok());
    }

    #[test]
    fn empty_graph_passes() {
        assert!(check_well_formed(&Graph::empty(0)).is_ok());
        assert!(check_well_formed(&Graph::empty(3)).is_ok());
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            WellFormedError::BadOffsets,
            WellFormedError::NeighborOutOfRange {
                node: 1,
                neighbor: 9,
            },
            WellFormedError::SelfLoop { node: 2 },
            WellFormedError::UnsortedAdjacency { node: 3 },
            WellFormedError::Asymmetric { u: 0, v: 1 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
