//! Static forest decompositions.
//!
//! An acyclic orientation with out-degree ≤ d partitions the edge set into
//! d forests: give each node's out-edges distinct colors `0..out_degree`;
//! within one color every node has out-degree ≤ 1 and the orientation is
//! acyclic, so each color class is a forest of rooted trees (each node
//! points to at most one parent). This is the constructive direction of
//! `arboricity ≤ degeneracy` and is what the paper's Lemma 3.8 pipeline
//! consumes (forest decomposition, then Cole–Vishkin per forest).

use crate::graph::{Graph, NodeId};
use crate::orientation::Orientation;

/// A rooted forest over nodes `0..n`, stored as parent pointers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootedForest {
    /// `parent[v]` is `Some(p)` if `v` points to `p` in this forest.
    parent: Vec<Option<NodeId>>,
}

impl RootedForest {
    /// Creates a forest with no edges on `n` nodes.
    pub fn new(n: usize) -> Self {
        RootedForest {
            parent: vec![None; n],
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// The parent of `v` in this forest, if any.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v]
    }

    /// Sets the parent pointer of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v == p`.
    pub fn set_parent(&mut self, v: NodeId, p: NodeId) {
        assert_ne!(v, p, "node cannot parent itself");
        self.parent[v] = Some(p);
    }

    /// Number of edges (nodes with a parent).
    pub fn edge_count(&self) -> usize {
        self.parent.iter().filter(|p| p.is_some()).count()
    }

    /// Nodes with no parent (roots, including isolated nodes).
    pub fn roots(&self) -> Vec<NodeId> {
        (0..self.n())
            .filter(|&v| self.parent[v].is_none())
            .collect()
    }

    /// Children lists (inverse of the parent map).
    pub fn children_lists(&self) -> Vec<Vec<NodeId>> {
        let mut ch = vec![Vec::new(); self.n()];
        for v in 0..self.n() {
            if let Some(p) = self.parent[v] {
                ch[p].push(v);
            }
        }
        ch
    }

    /// `true` iff following parent pointers never cycles (checked
    /// explicitly; parent-pointer structures can encode cycles).
    pub fn is_acyclic(&self) -> bool {
        let n = self.n();
        // state: 0 = unvisited, 1 = on current path, 2 = done
        let mut state = vec![0u8; n];
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut v = start;
            loop {
                if state[v] == 1 {
                    return false; // hit current path: cycle
                }
                if state[v] == 2 {
                    break;
                }
                state[v] = 1;
                path.push(v);
                match self.parent[v] {
                    Some(p) => v = p,
                    None => break,
                }
            }
            for u in path {
                state[u] = 2;
            }
        }
        true
    }

    /// Converts the forest into an undirected [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut b = crate::GraphBuilder::with_capacity(self.n(), self.edge_count());
        for v in 0..self.n() {
            if let Some(p) = self.parent[v] {
                b.add_edge(v, p);
            }
        }
        b.build()
    }

    /// Depth of each node (root depth 0). `None` entries never occur for
    /// acyclic forests.
    ///
    /// # Panics
    ///
    /// Panics if the parent structure contains a cycle.
    pub fn depths(&self) -> Vec<usize> {
        let n = self.n();
        let mut depth = vec![usize::MAX; n];
        for start in 0..n {
            if depth[start] != usize::MAX {
                continue;
            }
            // Walk up to a node with known depth or a root.
            let mut path = vec![start];
            let mut v = start;
            while let Some(p) = self.parent[v] {
                if depth[p] != usize::MAX {
                    break;
                }
                assert!(!path.contains(&p), "cycle through node {p}");
                path.push(p);
                v = p;
            }
            let d = match self.parent[v] {
                Some(p) => depth[p] + 1,
                None => 0,
            };
            // `path` runs child -> ancestor; assign depths top-down.
            for (extra, &u) in path.iter().rev().enumerate() {
                depth[u] = d + extra;
            }
        }
        depth
    }
}

/// Decomposes `g` into `≤ degeneracy(g)` rooted forests via the degeneracy
/// orientation. Each returned forest's edges are disjoint and their union
/// is exactly `E(g)`.
///
/// ```
/// use arbmis_graph::{gen, forest::forests_by_degeneracy};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = gen::apollonian(100, &mut rng);
/// let forests = forests_by_degeneracy(&g);
/// assert!(forests.len() <= 3);
/// let total: usize = forests.iter().map(|f| f.edge_count()).sum();
/// assert_eq!(total, g.m());
/// ```
pub fn forests_by_degeneracy(g: &Graph) -> Vec<RootedForest> {
    let o = Orientation::by_degeneracy(g);
    forests_from_orientation(g, &o)
}

/// Decomposes `g` along an arbitrary acyclic orientation: out-edge `i` of
/// each node goes to forest `i`.
///
/// # Panics
///
/// Panics if the orientation does not cover `g`.
pub fn forests_from_orientation(g: &Graph, o: &Orientation) -> Vec<RootedForest> {
    assert!(o.covers(g), "orientation does not match graph");
    let d = o.max_out_degree();
    let mut forests = vec![RootedForest::new(g.n()); d];
    for v in 0..g.n() {
        for (i, &p) in o.parents(v).iter().enumerate() {
            forests[i].set_parent(v, p);
        }
    }
    forests
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::traversal;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn decomposition_covers_all_edges_disjointly() {
        let g = gen::random_ktree(150, 3, &mut rng(1));
        let forests = forests_by_degeneracy(&g);
        assert!(forests.len() <= 3);
        let total: usize = forests.iter().map(|f| f.edge_count()).sum();
        assert_eq!(total, g.m());
        // Disjointness: collect normalized edges across forests.
        let mut seen = std::collections::HashSet::new();
        for f in &forests {
            for v in 0..f.n() {
                if let Some(p) = f.parent(v) {
                    let key = if v < p { (v, p) } else { (p, v) };
                    assert!(seen.insert(key), "edge {key:?} in two forests");
                    assert!(g.has_edge(v, p));
                }
            }
        }
    }

    #[test]
    fn each_class_is_a_forest() {
        let g = gen::apollonian(120, &mut rng(2));
        for f in forests_by_degeneracy(&g) {
            assert!(f.is_acyclic());
            assert!(traversal::is_forest(&f.to_graph()));
        }
    }

    #[test]
    fn tree_decomposes_into_one_forest() {
        let g = gen::random_tree_prufer(100, &mut rng(3));
        let forests = forests_by_degeneracy(&g);
        assert_eq!(forests.len(), 1);
        assert_eq!(forests[0].edge_count(), 99);
    }

    #[test]
    fn roots_and_children() {
        let mut f = RootedForest::new(4);
        f.set_parent(1, 0);
        f.set_parent(2, 0);
        f.set_parent(3, 2);
        assert_eq!(f.roots(), vec![0]);
        let ch = f.children_lists();
        assert_eq!(ch[0], vec![1, 2]);
        assert_eq!(ch[2], vec![3]);
        assert!(f.is_acyclic());
    }

    #[test]
    fn cycle_detected() {
        let mut f = RootedForest::new(3);
        f.set_parent(0, 1);
        f.set_parent(1, 2);
        f.set_parent(2, 0);
        assert!(!f.is_acyclic());
    }

    #[test]
    #[should_panic]
    fn self_parent_rejected() {
        let mut f = RootedForest::new(2);
        f.set_parent(1, 1);
    }

    #[test]
    fn depths_computed_top_down() {
        let mut f = RootedForest::new(5);
        // 0 <- 1 <- 2 <- 3, plus isolated 4.
        f.set_parent(1, 0);
        f.set_parent(2, 1);
        f.set_parent(3, 2);
        assert_eq!(f.depths(), vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn empty_graph_decomposition() {
        let g = crate::Graph::empty(5);
        let forests = forests_by_degeneracy(&g);
        assert!(forests.is_empty());
    }
}
