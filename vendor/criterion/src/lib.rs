//! Offline drop-in subset of the `criterion` API.
//!
//! Supports the workspace's bench surface: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId::new`], and [`Bencher::iter`]. Each benchmark is
//! calibrated to a per-sample time target, timed over `sample_size`
//! samples, and reported as min/median/mean on stdout. No statistical
//! analysis, plots, or persisted baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-sample time target used to calibrate iterations per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);

/// Benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Sets the default sample count for groups created later.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n;
        self
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibration pass: one iteration, to size subsequent samples.
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        b.iters = (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 24) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{}/{:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            self.name,
            id.label(),
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            samples.len(),
            b.iters,
        );
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // CLI arguments (e.g. `cargo bench -- <filter>`) are accepted
            // but ignored by this offline subset.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 8usize), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
