//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`
//! primitives. Matches parking_lot's signatures where they differ from
//! std: `lock()` / `read()` / `write()` return guards directly (poisoning
//! is swallowed — a panicked holder aborts the test anyway, and the
//! simulator's sinks hold plain data).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
