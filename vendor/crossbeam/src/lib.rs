//! Offline drop-in subset of the `crossbeam` API: scoped threads, backed
//! by `std::thread::scope` (stabilized long after crossbeam introduced
//! the pattern, with the same borrow-the-stack guarantees).
//!
//! Divergence from upstream: a panicking child thread propagates its
//! panic out of [`scope`] during the implicit join instead of surfacing
//! as `Err` — callers here all `.expect(..)` the result anyway, so the
//! observable behavior (test aborts with the panic message) matches.

use std::any::Any;
use std::thread as stdthread;

/// Scoped thread spawning, re-exported in crossbeam's layout.
pub mod thread {
    use super::*;

    /// A scope handle: spawn threads that may borrow from the enclosing
    /// stack frame. The closure given to [`spawn`](Scope::spawn) receives
    /// the scope again so children can spawn grandchildren.
    pub struct Scope<'scope, 'env: 'scope> {
        pub(crate) inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let reborrowed = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&reborrowed)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-stack threads can be
    /// spawned; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_stack() {
        let data = [1u64, 2, 3, 4];
        let mut results = vec![0u64; 4];
        scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                let data = &data;
                s.spawn(move |_| {
                    *slot = data[i] * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(results, [10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = std::sync::atomic::AtomicU64::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn join_handle_returns_value() {
        let v = scope(|s| s.spawn(|_| 7u32).join().unwrap()).unwrap();
        assert_eq!(v, 7);
    }
}
