//! Offline drop-in subset of `serde_json`: [`to_string`],
//! [`to_string_pretty`], and [`from_str`] over the vendored
//! [`serde::Value`] model.
//!
//! Number fidelity: integers print as integers; floats print with Rust's
//! shortest-roundtrip formatting, so `value -> JSON -> value` preserves
//! every finite `f64` exactly (an integral float like `1.0` reparses as
//! an integer token, which deserializes back into `f64` losslessly).
//! Non-finite floats are rejected at serialization time like upstream.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching upstream's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a value of type `T` out of JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize_value(&v)?)
}

// -------------------------------------------------------------- printing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{}` is shortest-roundtrip; integral values print bare
            // ("1"), which reparses as an integer and converts back.
            out.push_str(&x.to_string());
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1)?;
            }
            if !fields.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y\n".into())),
            ("d".into(), Value::Float(1.5)),
            ("e".into(), Value::Int(-7)),
        ]);
        let s = to_string(&Wrapper(v.clone())).unwrap();
        let back: Wrapper = from_str(&s).unwrap();
        assert_eq!(back.0, v);
    }

    /// Test helper threading a raw Value through Serialize/Deserialize.
    struct Wrapper(Value);
    impl serde::Serialize for Wrapper {
        fn serialize_value(&self) -> Value {
            self.0.clone()
        }
    }
    impl serde::Deserialize for Wrapper {
        fn deserialize_value(v: &Value) -> std::result::Result<Self, serde::DeError> {
            Ok(Wrapper(v.clone()))
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1.0, -2.5, 1e-9, 123456.789, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "via {s}");
        }
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn pretty_output_shape() {
        let v = Wrapper(Value::Object(vec![("k".into(), Value::UInt(3))]));
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": 3\n}");
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<f64>("1.5garbage").is_err());
        assert!(from_str::<Wrapper>("{\"a\":}").is_err());
        assert!(from_str::<Wrapper>("\"unterminated").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let w: Wrapper = from_str("\"\\u0041λ\\n\"").unwrap();
        assert_eq!(w.0, Value::String("Aλ\n".into()));
        let s = to_string(&"λ\u{1}").unwrap();
        assert_eq!(s, "\"λ\\u0001\"");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Wrapper(Value::Array(vec![]))).unwrap(), "[]");
        assert_eq!(to_string(&Wrapper(Value::Object(vec![]))).unwrap(), "{}");
        let w: Wrapper = from_str("  [ ]  ").unwrap();
        assert_eq!(w.0, Value::Array(vec![]));
    }
}
