//! Offline drop-in subset of the `proptest` API.
//!
//! Supports the workspace's usage: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, integer-range and tuple
//! strategies, `prop_map` / `prop_flat_map` combinators, and
//! [`collection::vec`]. Cases are generated deterministically from the
//! test's module path and case index, so failures reproduce across
//! runs. Unlike upstream there is no shrinking: a failing case reports
//! its index and message as-is.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Uses each generated value to pick a follow-up strategy.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    if self.end <= self.start {
                        return self.start; // degenerate range: clamp, don't panic
                    }
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    if end <= start {
                        return start;
                    }
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return start.wrapping_add(rng.next_u64() as $t);
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors of `elem` values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration. Only `cases` is supported.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case (assertion message).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-case RNG (SplitMix64 seeded from the test name
    /// and case index).
    pub struct TestRng {
        state: u64,
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for the `case`-th case of the named test.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut seed = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // Warm up so nearby case indices diverge immediately.
            splitmix64(&mut seed);
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

/// Common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Grammar: an optional
/// `#![proptest_config(expr)]` header, then `#[test] fn` items whose
/// parameters are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        u64::from(__case),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    let __result = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest {} case {}/{} failed: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
}

/// Fails the enclosing property case unless the operands differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let x = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::generate(&(0u64..=5), &mut rng);
            assert!(y <= 5);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = Strategy::generate(&(0u64..1 << 60), &mut TestRng::for_case("t", 7));
        let b = Strategy::generate(&(0u64..1 << 60), &mut TestRng::for_case("t", 7));
        let c = Strategy::generate(&(0u64..1 << 60), &mut TestRng::for_case("t", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn combinators_compose() {
        let strat = (1usize..10)
            .prop_flat_map(|n| crate::collection::vec(0usize..n, 0..20).prop_map(move |v| (n, v)));
        let mut rng = TestRng::for_case("compose", 3);
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert!(v.iter().all(|&x| x < n));
            assert!(v.len() < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
