//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements exactly the surface the workspace uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64 — deterministic,
//! but *not* stream-compatible with upstream `StdRng`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` yields the same
//! stream on every platform and every run; all derived draws
//! (`gen_range`, `gen_bool`, shuffles) consume the stream in a fixed
//! order.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range admissible as a `gen_range` argument.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free-enough bounded integer draw (modulo bias is < 2⁻⁵³ for
/// the sizes this workspace uses; a widening-multiply keeps it cheap).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience draws layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`. Panics when the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Draws a Bernoulli(`p`). Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** with SplitMix64 seed
    /// expansion. Deterministic and portable; not stream-compatible with
    /// upstream `rand::rngs::StdRng` (which is ChaCha12), which is fine —
    /// nothing in this workspace depends on the upstream stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed;
            let s = [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_and_stream_independence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_frequency() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation_and_choose_hits_members() {
        let mut r = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.contains(v.choose(&mut StdRng::seed_from_u64(1)).unwrap()));
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn works_through_unsized_generic() {
        fn takes<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut r = StdRng::seed_from_u64(5);
        let f = takes(&mut r);
        assert!((0.0..1.0).contains(&f));
    }
}
