//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields (any visibility, non-generic);
//! * enums whose variants are unit or struct-like (externally tagged,
//!   mirroring upstream serde's JSON representation: `"Variant"` for
//!   unit variants, `{"Variant": {..fields..}}` for struct variants);
//! * the field attributes `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path::to::predicate")]`.
//!
//! Anything else (tuple structs, generics, other serde attributes)
//! panics at expansion time with a clear message rather than silently
//! producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    default: bool,
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// --------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i, &mut Vec::new());
    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: expected braced body for `{name}`, got {other:?}"),
    };
    let shape = match kw.as_str() {
        "struct" => Shape::Struct(parse_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Skips leading attributes and visibility, collecting `#[serde(..)]`
/// attribute groups into `serde_attrs`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize, serde_attrs: &mut Vec<TokenStream>) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                match tokens.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                            (inner.first(), inner.get(1))
                        {
                            if id.to_string() == "serde" {
                                serde_attrs.push(args.stream());
                            }
                        }
                        *i += 1;
                    }
                    other => panic!("serde_derive: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, got {other:?}"),
    }
}

fn parse_field_attrs(groups: &[TokenStream]) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    for g in groups {
        let parts: Vec<TokenTree> = g.clone().into_iter().collect();
        let mut j = 0;
        while j < parts.len() {
            match &parts[j] {
                TokenTree::Ident(id) => {
                    let key = id.to_string();
                    match key.as_str() {
                        "default" => {
                            attrs.default = true;
                            j += 1;
                        }
                        "skip_serializing_if" => match (parts.get(j + 1), parts.get(j + 2)) {
                            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                                if eq.as_char() == '=' =>
                            {
                                let s = lit.to_string();
                                attrs.skip_serializing_if = Some(s.trim_matches('"').to_string());
                                j += 3;
                            }
                            _ => panic!("serde_derive: skip_serializing_if needs = \"path\""),
                        },
                        other => panic!("serde_derive: unsupported serde attribute `{other}`"),
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
                other => panic!("serde_derive: malformed serde attribute: {other:?}"),
            }
        }
    }
    attrs
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut serde_attrs = Vec::new();
        skip_attrs_and_vis(&tokens, &mut i, &mut serde_attrs);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if let Some(TokenTree::Punct(_)) = tokens.get(i) {
            i += 1; // the comma
        }
        fields.push(Field {
            name,
            attrs: parse_field_attrs(&serde_attrs),
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i, &mut Vec::new());
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_fields(g.stream());
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive: tuple variant `{name}` is not supported")
            }
            _ => None,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("serde_derive: expected `,` after variant `{name}`, got {other:?}"),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ------------------------------------------------------------ generation

/// Emits the statements that build `fields_vec` from named bindings
/// (`&self.f` for structs, plain `f` for enum-variant bindings).
fn ser_field_stmts(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        let expr = access(&f.name);
        let push = format!(
            "__fields.push((\"{n}\".to_string(), ::serde::Serialize::serialize_value({expr})));",
            n = f.name
        );
        if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !{pred}({expr}) {{ {push} }}\n"));
        } else {
            out.push_str(&push);
            out.push('\n');
        }
    }
    out
}

/// Emits the `field: <expr>,` initializers for deserialization from an
/// object binding named `__obj`.
fn de_field_inits(ty: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = if f.attrs.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{ty}\", \"{n}\"))",
                n = f.name
            )
        };
        out.push_str(&format!(
            "{n}: match ::serde::field(__obj, \"{n}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize_value(__x)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n",
            n = f.name
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let stmts = ser_field_stmts(fields, |n| format!("&self.{n}"));
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{stmts}\n::serde::Value::Object(__fields)"
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    Some(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let stmts = ser_field_stmts(fields, |n| n.to_string());
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n{stmts}\n\
                             ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(__fields))])\n\
                             }},\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits = de_field_inits(name, fields);
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object for `{name}`\", __v))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}\n}})"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.fields {
                    None => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    Some(fields) => {
                        let inits = de_field_inits(name, fields);
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object for variant `{v}`\", __inner))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{\n{inits}\n}})\n\
                             }},\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::new(format!(\
                 \"unknown variant `{{__other}}` of `{name}`\"))),\n}},\n\
                 ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                 let (__tag, __inner) = &__fields[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::new(format!(\
                 \"unknown variant `{{__other}}` of `{name}`\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"variant of `{name}`\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
