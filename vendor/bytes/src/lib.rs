//! Offline drop-in subset of the `bytes` API: just enough [`BufMut`] for
//! the CONGEST wire encodings (byte-granular appends to a `Vec<u8>`).

/// A growable byte sink.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_appends() {
        let mut v = Vec::new();
        v.put_u8(7);
        v.put_slice(&[1, 2]);
        v.put_u16(0x0304);
        assert_eq!(v, [7, 1, 2, 3, 4]);
        v.put_u32(1);
        v.put_u64(2);
        assert_eq!(v.len(), 5 + 4 + 8);
    }
}
