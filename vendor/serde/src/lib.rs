//! Offline drop-in subset of the `serde` API.
//!
//! Upstream serde abstracts over arbitrary data formats; this workspace
//! only ever serializes to and from JSON (via the sibling vendored
//! `serde_json`), so the traits here are defined directly over a
//! JSON-shaped [`Value`] tree instead of the full
//! `Serializer`/`Deserializer` visitor machinery. The derive macros
//! (`#[derive(Serialize, Deserialize)]`, re-exported from
//! `serde_derive`) generate impls of these traits and understand the
//! `#[serde(default)]` and `#[serde(skip_serializing_if = "path")]`
//! field attributes used in this workspace.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped document tree.
///
/// Object fields keep insertion order so serialized output is stable
/// (struct field order), which the transcript-digest golden tests rely
/// on.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (always < 0; non-negatives normalize to `UInt`).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Error for a missing struct field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError::new(format!("missing field `{field}` of `{ty}`"))
    }

    /// Error for a mismatched value shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::new(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into a document tree.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a document tree.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("integer {x} out of range"))),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("integer {x} out of range"))),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::UInt(x as u64)
                } else {
                    Value::Int(x)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("integer {x} out of range"))),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("integer {x} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(x) => Ok(*x as f64),
            Value::Int(x) => Ok(*x as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(DeError::new(format!(
                                "expected array of {expected}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("array (tuple)", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Looks up `key` among object `fields` (helper for derived impls).
pub fn field<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(
            u64::deserialize_value(&42u64.serialize_value()).unwrap(),
            42
        );
        assert_eq!(
            i64::deserialize_value(&(-3i64).serialize_value()).unwrap(),
            -3
        );
        assert_eq!(
            f64::deserialize_value(&1.5f64.serialize_value()).unwrap(),
            1.5
        );
        assert!(bool::deserialize_value(&true.serialize_value()).unwrap());
        let v: Vec<u32> = Deserialize::deserialize_value(&vec![1u32, 2].serialize_value()).unwrap();
        assert_eq!(v, [1, 2]);
        let o: Option<u64> = Deserialize::deserialize_value(&Value::Null).unwrap();
        assert_eq!(o, None);
        let t: (u64, bool) =
            Deserialize::deserialize_value(&(7u64, false).serialize_value()).unwrap();
        assert_eq!(t, (7, false));
    }

    #[test]
    fn shape_errors() {
        assert!(bool::deserialize_value(&Value::UInt(1)).is_err());
        assert!(u64::deserialize_value(&Value::Int(-1)).is_err());
        assert!(String::deserialize_value(&Value::Null).is_err());
        let err = Vec::<u64>::deserialize_value(&Value::Bool(true)).unwrap_err();
        assert!(err.to_string().contains("expected array"));
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get("b"), None);
        assert!(Value::Null.as_object().is_none());
    }
}
